//! End-to-end concurrency: one server, many interleaved user dialogues
//! over the TCP JSON-lines protocol.
//!
//! Each simulated user owns a hidden target query and labels every
//! realized membership question by evaluating the target — exactly the
//! paper's model user (§2.1.2) — over a real socket. One user is noisy
//! (flips the first answer) and recovers through `Correct` + replay (§5).

use qhorn_core::query::equiv::equivalent;
use qhorn_core::{Query, Response};
use qhorn_engine::session::LearnerKind;
use qhorn_service::proto::{Reply, Request, StepReply};
use qhorn_service::registry::{Registry, RegistryConfig};
use qhorn_service::{Client, Server};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn start_server(workers: usize) -> Server {
    let registry = Arc::new(
        Registry::open(RegistryConfig {
            shards: 8,
            ttl: Duration::from_secs(300),
            driver_timeout: Duration::from_secs(20),
            ..RegistryConfig::default()
        })
        .expect("open registry"),
    );
    Server::start("127.0.0.1:0", registry, workers).expect("bind server")
}

struct UserSpec {
    dataset: &'static str,
    learner: LearnerKind,
    target: &'static str,
    noisy: bool,
}

const USERS: &[UserSpec] = &[
    UserSpec {
        dataset: "chocolates",
        learner: LearnerKind::Qhorn1,
        target: "all x1; some x2 x3",
        noisy: false,
    },
    UserSpec {
        dataset: "chocolates",
        learner: LearnerKind::Qhorn1,
        target: "all x1 x2 -> x3",
        noisy: false,
    },
    UserSpec {
        dataset: "chocolates",
        learner: LearnerKind::RolePreserving,
        target: "all x1; some x2 x3",
        noisy: false,
    },
    UserSpec {
        dataset: "cellars",
        learner: LearnerKind::Qhorn1,
        target: "some x1 x2 x3",
        noisy: false,
    },
    UserSpec {
        dataset: "cellars",
        learner: LearnerKind::RolePreserving,
        target: "all x2 -> x1; some x3",
        noisy: false,
    },
    UserSpec {
        dataset: "chocolates",
        learner: LearnerKind::Qhorn1,
        target: "some x1; some x2; all x3",
        noisy: false,
    },
    UserSpec {
        dataset: "cellars",
        learner: LearnerKind::Qhorn1,
        target: "all x1 -> x2; some x3",
        noisy: false,
    },
    UserSpec {
        dataset: "chocolates",
        learner: LearnerKind::RolePreserving,
        target: "all x1 -> x3; some x2",
        noisy: false,
    },
    UserSpec {
        dataset: "chocolates",
        learner: LearnerKind::RolePreserving,
        target: "all x1; some x2 x3",
        noisy: true,
    },
];

/// Runs one full dialogue: create → answer* → (correct → answer*) →
/// verify → export; returns the learned query.
fn run_user(addr: SocketAddr, spec: &UserSpec) -> Query {
    let target = qhorn_lang::parse_with_arity(spec.target, 3).expect("target parses");
    let mut client = Client::connect(addr).expect("connect");

    let learner = match spec.learner {
        LearnerKind::Qhorn1 => "qhorn1",
        LearnerKind::RolePreserving => "role_preserving",
    };
    let create = qhorn_json::from_str::<Request>(&format!(
        r#"{{"type":"create_session","dataset":"{}","size":35,"learner":"{learner}"}}"#,
        spec.dataset
    ))
    .unwrap();
    let (session, mut step) = client.step(&create).expect("create session");

    // Phase 1: answer questions. The noisy user flips the first label but
    // remembers the question they mislabeled (a UI shows the response
    // history, §5).
    let mut flipped: Option<(usize, qhorn_core::Obj)> = None;
    loop {
        match step {
            StepReply::Question {
                ref question,
                index,
                ..
            } => {
                let honest = target.eval(question);
                let label = if spec.noisy && flipped.is_none() {
                    flipped = Some((index, question.clone()));
                    honest.negate()
                } else {
                    honest
                };
                step = client
                    .step(&Request::Answer {
                        session,
                        response: label,
                    })
                    .expect("answer")
                    .1;
            }
            StepReply::Learned { .. } | StepReply::Failed { .. } => break,
            StepReply::Verified { .. } => panic!("verification before learning"),
        }
    }

    // Phase 2: the noisy user corrects their flipped answer and replays;
    // only invalidated questions come back.
    if let Some((idx, question)) = flipped {
        let honest: Response = target.eval(&question);
        step = client
            .step(&Request::Correct {
                session,
                corrections: vec![(idx, honest)],
            })
            .expect("correct")
            .1;
        loop {
            match step {
                StepReply::Question { ref question, .. } => {
                    step = client
                        .step(&Request::Answer {
                            session,
                            response: target.eval(question),
                        })
                        .expect("answer after correction")
                        .1;
                }
                StepReply::Learned { .. } => break,
                ref other => panic!("correction did not recover: {other:?}"),
            }
        }
    }

    let learned = match &step {
        StepReply::Learned { query_json, .. } => query_json.clone(),
        other => panic!("no learned query: {other:?}"),
    };

    // Phase 3: verify the learned query against the same user (§4).
    let mut step = client
        .step(&Request::Verify {
            session,
            query: None,
        })
        .expect("verify")
        .1;
    loop {
        match step {
            StepReply::Question { ref question, .. } => {
                step = client
                    .step(&Request::Answer {
                        session,
                        response: target.eval(question),
                    })
                    .expect("verification answer")
                    .1;
            }
            StepReply::Verified { verified } => {
                assert!(
                    verified,
                    "learned query failed verification against its own user"
                );
                break;
            }
            ref other => panic!("unexpected verification step: {other:?}"),
        }
    }

    // Phase 4: export and cross-check the wire text via qhorn-lang.
    match client
        .request(&Request::ExportQuery {
            session,
            format: "ascii".into(),
        })
        .expect("export")
    {
        Reply::Exported { text } => {
            let reparsed = qhorn_lang::parse_with_arity(&text, 3).expect("exported text parses");
            assert!(equivalent(&reparsed, &learned), "export/parse round trip");
        }
        other => panic!("unexpected export reply: {other:?}"),
    }

    learned
}

#[test]
fn eight_plus_concurrent_sessions_learn_their_targets() {
    let server = start_server(12);
    let addr = server.addr();

    let handles: Vec<_> = USERS
        .iter()
        .map(|spec| {
            std::thread::spawn(move || {
                let learned = run_user(addr, spec);
                let target = qhorn_lang::parse_with_arity(spec.target, 3).unwrap();
                assert!(
                    equivalent(&learned, &target),
                    "learned {learned} for target {target}"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().expect("user thread");
    }

    // Aggregate counters reflect the fleet.
    let mut client = Client::connect(addr).unwrap();
    match client.request(&Request::Stats).unwrap() {
        Reply::Stats(stats) => {
            assert_eq!(stats.created, USERS.len() as u64);
            assert!(stats.completed >= USERS.len() as u64, "{stats:?}");
            assert!(stats.answers > 0);
        }
        other => panic!("unexpected stats reply: {other:?}"),
    }
    server.shutdown();
}

#[test]
fn batch_over_the_wire_matches_sequential_execution() {
    let server = start_server(2);
    let addr = server.addr();

    // Sequential ground truth, computed locally over the same catalog
    // dataset the server will build.
    let query_text = "all x1 -> x2; some x3";
    let (store, _) = qhorn_service::dataset::build("cellars", 500).unwrap();
    let q = qhorn_lang::parse_with_arity(query_text, 3).unwrap();
    let plan = qhorn_engine::CompiledQuery::compile(&q);
    let expected: Vec<u32> = qhorn_engine::exec::execute(&plan, store.boolean())
        .into_iter()
        .map(|id| id.0)
        .collect();

    let mut client = Client::connect(addr).unwrap();
    for workers in [1usize, 4, 8] {
        match client
            .request(&Request::EvaluateBatch {
                session: None,
                dataset: Some("cellars".into()),
                size: 500,
                query: Some(query_text.into()),
                workers,
            })
            .unwrap()
        {
            Reply::Batch { answers, stats, .. } => {
                assert_eq!(stats.objects, 500);
                assert_eq!(stats.answers, expected.len());
                assert!(
                    stats.signatures_evaluated <= stats.objects,
                    "dedup never evaluates more signatures than objects"
                );
                assert_eq!(answers, expected, "workers={workers}");
            }
            other => panic!("unexpected batch reply: {other:?}"),
        }
    }

    // The Stats message accumulates batch execution statistics, so
    // clients can observe dedup effectiveness fleet-wide.
    match client.request(&Request::Stats).unwrap() {
        Reply::Stats(stats) => {
            assert_eq!(stats.batch_runs, 3);
            assert_eq!(stats.batch_objects, 1500);
            assert_eq!(stats.batch_answers, 3 * expected.len() as u64);
            assert!(stats.batch_signatures <= stats.batch_objects);
            assert!(stats.batch_signatures > 0);
        }
        other => panic!("unexpected stats reply: {other:?}"),
    }
    server.shutdown();
}

#[test]
fn protocol_errors_are_replies_not_disconnects() {
    let server = start_server(1);
    let mut client = Client::connect(server.addr()).unwrap();
    // Unknown session.
    match client
        .request(&Request::NextQuestion { session: 424242 })
        .unwrap()
    {
        Reply::Error { message } => assert!(message.contains("unknown session")),
        other => panic!("expected error reply, got {other:?}"),
    }
    // Malformed request line: the connection survives.
    match client
        .request(&Request::ExportQuery {
            session: 1,
            format: "sq".into(),
        })
        .unwrap()
    {
        Reply::Error { .. } => {}
        other => panic!("expected error reply, got {other:?}"),
    }
    // The same connection still serves good requests.
    match client.request(&Request::Stats).unwrap() {
        Reply::Stats(_) => {}
        other => panic!("expected stats, got {other:?}"),
    }
    server.shutdown();
}
