//! Malformed-input robustness: truncated, oversized, and garbage inputs —
//! hand-written corpus plus proptest-generated — against both frontends.
//! The servers must answer with an error (4xx / `Reply::Error`) or drop
//! the connection, never panic, and keep serving well-formed requests
//! afterwards.
//!
//! Both servers run with **one worker**, so a handler thread that dies
//! (a panic kills the thread, not the process) leaves nobody to serve the
//! follow-up probe: the probe's read timeout turns any panic into a test
//! failure, not a silent pass.

use proptest::prelude::*;
use qhorn_service::registry::{Registry, RegistryConfig};
use qhorn_service::{HttpServer, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const PROBE_TIMEOUT: Duration = Duration::from_secs(10);

/// Sends raw bytes on a fresh connection, optionally reads whatever
/// comes back, and drops the connection. Write errors are fine — the
/// server may legitimately cut us off mid-flood.
fn send_raw(addr: SocketAddr, bytes: &[u8], read_back: bool) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.write_all(bytes);
    let _ = stream.flush();
    let mut reply = Vec::new();
    if read_back {
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    reply.extend_from_slice(&chunk[..n]);
                    if reply.len() > 64 * 1024 {
                        break;
                    }
                }
            }
        }
    }
    reply
}

/// The server still answers a well-formed request. With one worker this
/// fails (by timeout) if any earlier input panicked the handler thread.
fn assert_tcp_serviceable(addr: SocketAddr) {
    let mut stream = TcpStream::connect(addr).expect("probe connect");
    stream
        .set_read_timeout(Some(PROBE_TIMEOUT))
        .expect("set timeout");
    stream
        .write_all(b"{\"type\":\"stats\"}\n")
        .expect("probe write");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    while !buf.contains(&b'\n') {
        match stream.read(&mut chunk) {
            Ok(0) => panic!("server closed the probe connection"),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("probe timed out — handler thread dead? {e}"),
        }
    }
    let line = String::from_utf8(buf).expect("probe reply utf-8");
    assert!(line.contains("\"type\":\"stats\""), "{line}");
}

fn assert_http_serviceable(addr: SocketAddr) {
    let mut stream = TcpStream::connect(addr).expect("probe connect");
    stream
        .set_read_timeout(Some(PROBE_TIMEOUT))
        .expect("set timeout");
    stream
        .write_all(b"GET /v1/stats HTTP/1.1\r\nHost: qhorn\r\nConnection: close\r\n\r\n")
        .expect("probe write");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("probe timed out — handler thread dead? {e}"),
        }
    }
    let text = String::from_utf8_lossy(&buf);
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");
    assert!(text.contains("\"type\":\"stats\""), "{text}");
}

/// Any response the HTTP server does send to garbage must be 4xx/5xx —
/// never 200 — and parse as an HTTP status line.
fn assert_http_rejection(reply: &[u8]) {
    if reply.is_empty() {
        return; // dropped connection: acceptable
    }
    let text = String::from_utf8_lossy(reply);
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split(' ').next())
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed response to garbage: {text}"));
    assert!((400..600).contains(&status), "garbage got {status}: {text}");
}

// ---------------------------------------------------------------------------
// Hand-written corpus
// ---------------------------------------------------------------------------

/// Malformed HTTP requests: framing violations, limit violations, bad
/// routes/methods/versions, body garbage of every flavor.
fn http_corpus() -> Vec<Vec<u8>> {
    let mut corpus: Vec<Vec<u8>> = vec![
        // Pure garbage.
        b"\x00\x01\x02\x03\x04garbage\xff\xfe".to_vec(),
        b"not http at all\r\n\r\n".to_vec(),
        b"\r\n\r\n".to_vec(),
        // Broken request lines.
        b"GET\r\n\r\n".to_vec(),
        b"GET /v1/stats\r\n\r\n".to_vec(),
        b"GET /v1/stats HTTP/1.1 extra\r\n\r\n".to_vec(),
        b"GET /v1/stats SPDY/3\r\n\r\n".to_vec(),
        b"GET /v1/stats HTTP/2.0\r\n\r\n".to_vec(),
        // Unsupported / wrong methods.
        b"DELETE /v1/stats HTTP/1.1\r\n\r\n".to_vec(),
        b"PUT /v1/session/answer HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}".to_vec(),
        b"GET /v1/session/answer HTTP/1.1\r\n\r\n".to_vec(),
        // Unknown routes.
        b"GET /nope HTTP/1.1\r\n\r\n".to_vec(),
        b"POST /v1/session/nope HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}".to_vec(),
        // Broken headers.
        b"GET /v1/stats HTTP/1.1\r\nno colon here\r\n\r\n".to_vec(),
        b"GET /v1/stats HTTP/1.1\r\nbad header: value\r\n\r\n".to_vec(),
        b"GET /v1/stats HTTP/1.1\r\n: empty name\r\n\r\n".to_vec(),
        // Broken body framing.
        b"POST /v1/stats HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_vec(),
        b"POST /v1/stats HTTP/1.1\r\nContent-Length: -5\r\n\r\n".to_vec(),
        b"POST /v1/stats HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n".to_vec(),
        b"POST /v1/stats HTTP/1.1\r\nContent-Length: 10\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
        // Duplicate framing headers (request-smuggling vector).
        b"POST /v1/stats HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 10\r\n\r\n".to_vec(),
        b"POST /v1/stats HTTP/1.1\r\nTransfer-Encoding: chunked\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
        b"POST /v1/stats HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n".to_vec(),
        b"POST /v1/stats HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n".to_vec(),
        b"POST /v1/stats HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhelloXX".to_vec(),
        // Truncated: header promises more body than arrives (connection
        // drops mid-body).
        b"POST /v1/session/answer HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"session\":".to_vec(),
        // Oversized declared body.
        format!("POST /v1/stats HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 100 << 20).into_bytes(),
        // Garbage JSON bodies on a real route.
        b"POST /v1/session/answer HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!".to_vec(),
        b"POST /v1/session/answer HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]".to_vec(),
        b"POST /v1/session/answer HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}".to_vec(),
        b"POST /v1/session/answer HTTP/1.1\r\nContent-Length: 4\r\n\r\n\xff\xfe\x00\x01".to_vec(),
        // Body type contradicting the route.
        b"POST /v1/session/answer HTTP/1.1\r\nContent-Length: 16\r\n\r\n{\"type\":\"stats\"}".to_vec(),
        // Wrong-typed fields inside valid JSON.
        b"POST /v1/session/answer HTTP/1.1\r\nContent-Length: 34\r\n\r\n{\"session\":\"one\",\"response\":true}".to_vec(),
        br#"POST /v1/session/create HTTP/1.1
Content-Length: 47

{"dataset":"chocolates","learner":"no_such_one"}"#
            .to_vec(),
    ];
    // Malformed dataset uploads: empty, wrong-typed schema, unvalidated
    // propositions, and a drop without a name.
    let post = |route: &str, body: &str| {
        format!(
            "POST {route} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    };
    corpus.push(post("/v1/dataset/upload", "{}"));
    corpus.push(post("/v1/dataset/upload", "not json"));
    corpus.push(post(
        "/v1/dataset/upload",
        r#"{"name":"x","schema":42,"objects":[],"propositions":[]}"#,
    ));
    corpus.push(post(
        "/v1/dataset/upload",
        r#"{"name":"x","schema":{"name":"R","attrs":[],"embedded_name":"E","embedded":[{"name":"a","type":"bool"}]},"objects":[{"attrs":[],"tuples":[[1,2,3]]}],"propositions":[]}"#,
    ));
    corpus.push(post("/v1/dataset/drop", "{}"));
    corpus.push(post("/v1/dataset/drop", r#"{"name":17}"#));
    // Oversized head: a single enormous header.
    let mut big = b"GET /v1/stats HTTP/1.1\r\nX-Pad: ".to_vec();
    big.extend(std::iter::repeat_n(b'a', 64 * 1024));
    big.extend_from_slice(b"\r\n\r\n");
    corpus.push(big);
    // Head never terminated (flood without the blank line).
    let mut flood = b"GET /v1/stats HTTP/1.1\r\n".to_vec();
    for i in 0..2000 {
        flood.extend_from_slice(format!("X-{i}: y\r\n").as_bytes());
    }
    corpus.push(flood);
    corpus
}

/// Malformed JSON-lines frames.
fn lines_corpus() -> Vec<Vec<u8>> {
    let mut corpus: Vec<Vec<u8>> = vec![
        b"garbage\n".to_vec(),
        b"{\n".to_vec(),
        b"{}\n".to_vec(),
        b"[]\n".to_vec(),
        b"null\n".to_vec(),
        b"42\n".to_vec(),
        b"{\"type\":\"bogus\"}\n".to_vec(),
        b"{\"type\":\"answer\"}\n".to_vec(),
        b"{\"type\":\"answer\",\"session\":\"one\",\"response\":1}\n".to_vec(),
        b"{\"type\":\"create_session\",\"dataset\":17,\"learner\":\"qhorn1\"}\n".to_vec(),
        b"{\"type\":\"create_session\",\"dataset\":\"chocolates\",\"size\":99999999,\"learner\":\"qhorn1\"}\n".to_vec(),
        b"{\"type\":\"evaluate_batch\"}\n".to_vec(),
        b"{\"type\":\"upload_dataset\"}\n".to_vec(),
        b"{\"type\":\"upload_dataset\",\"name\":\"x\",\"schema\":{},\"objects\":[],\"propositions\":[]}\n"
            .to_vec(),
        b"{\"type\":\"drop_dataset\"}\n".to_vec(),
        b"{\"type\":\"create_session\",\"dataset\":\"chocolates\",\"size\":0,\"learner\":\"qhorn1\"}\n"
            .to_vec(),
        b"{\"type\":\"stats\"".to_vec(), // truncated, never newline-terminated
        b"\xff\xfe\x00\n".to_vec(),     // not UTF-8
        b"\n\n\n\n".to_vec(),           // blank lines only
    ];
    // A newline-free flood past the 1 MiB line cap.
    corpus.push(vec![b'x'; (1 << 20) + 4096]);
    corpus
}

// ---------------------------------------------------------------------------
// The sweeps
// ---------------------------------------------------------------------------

#[test]
fn http_corpus_never_kills_the_server() {
    let registry = Arc::new(Registry::open(RegistryConfig::default()).unwrap());
    let server = HttpServer::start("127.0.0.1:0", registry, 1).expect("http server");
    let addr = server.addr();
    for (i, bytes) in http_corpus().iter().enumerate() {
        let reply = send_raw(addr, bytes, true);
        assert_http_rejection(&reply);
        assert_http_serviceable(addr);
        // A couple of spot checks on specific statuses.
        let text = String::from_utf8_lossy(&reply);
        match i {
            11 => assert!(text.starts_with("HTTP/1.1 404"), "unknown route: {text}"),
            8 => {
                // A 405 must name the permitted methods (RFC 9110 §15.5.6).
                assert!(text.starts_with("HTTP/1.1 405"), "bad method: {text}");
                assert!(
                    text.contains("Allow: GET, POST"),
                    "405 without Allow: {text}"
                );
            }
            7 => assert!(text.starts_with("HTTP/1.1 505"), "bad version: {text}"),
            _ => {}
        }
        if bytes
            .windows(14)
            .filter(|w| w.eq_ignore_ascii_case(b"Content-Length"))
            .count()
            > 1
        {
            assert!(
                text.starts_with("HTTP/1.1 400"),
                "duplicate Content-Length not rejected: {text}"
            );
        }
    }
    server.shutdown();
}

#[test]
fn lines_corpus_never_kills_the_server() {
    let registry = Arc::new(Registry::open(RegistryConfig::default()).unwrap());
    let server = Server::start("127.0.0.1:0", registry, 1).expect("tcp server");
    let addr = server.addr();
    for bytes in &lines_corpus() {
        let reply = send_raw(addr, bytes, bytes.ends_with(b"\n"));
        // Whatever came back line-wise must be error replies, not panics.
        for line in String::from_utf8_lossy(&reply).lines() {
            if !line.trim().is_empty() {
                assert!(line.contains("\"type\":\"error\""), "{line}");
            }
        }
        assert_tcp_serviceable(addr);
    }
    server.shutdown();
}

/// Mixed well-formed/hostile traffic on one keep-alive HTTP connection:
/// a valid request, then garbage, must end with the connection closed
/// (framing is untrusted) but the *server* still alive.
#[test]
fn keep_alive_connection_survives_until_the_garbage() {
    let registry = Arc::new(Registry::open(RegistryConfig::default()).unwrap());
    let server = HttpServer::start("127.0.0.1:0", registry, 1).expect("http server");
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(PROBE_TIMEOUT)).unwrap();
    // Two valid keep-alive requests back to back.
    for _ in 0..2 {
        stream
            .write_all(b"GET /v1/stats HTTP/1.1\r\nHost: q\r\n\r\n")
            .unwrap();
        let mut seen = Vec::new();
        let mut chunk = [0u8; 4096];
        while !seen.windows(4).any(|w| w == b"\r\n\r\n") || !seen.ends_with(b"}") {
            let n = stream.read(&mut chunk).expect("keep-alive read");
            assert!(n > 0, "server closed a healthy keep-alive connection");
            seen.extend_from_slice(&chunk[..n]);
        }
        assert!(String::from_utf8_lossy(&seen).starts_with("HTTP/1.1 200"));
    }
    // Now garbage on the same connection: 4xx-or-close, then the server
    // still answers fresh connections.
    let _ = stream.write_all(b"complete nonsense\r\n\r\n");
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest); // server closes after the 400
    assert_http_rejection(&rest);
    drop(stream);
    assert_http_serviceable(addr);
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random garbage (with occasional HTTP-ish shards spliced in) never
    /// panics the HTTP worker.
    #[test]
    fn random_bytes_dont_kill_http(
        prefix in prop_oneof![
            Just(String::new()),
            Just("POST /v1/session/answer HTTP/1.1\r\n".to_string()),
            Just("GET /metrics HTTP/1.1\r\n".to_string()),
            "\\PC{0,30}",
        ],
        garbage in prop::collection::vec(0u8..=255, 0..600),
        terminate in any::<bool>(),
    ) {
        static SERVER: std::sync::OnceLock<(SocketAddr, HttpServer)> = std::sync::OnceLock::new();
        let (addr, _) = SERVER.get_or_init(|| {
            let registry = Arc::new(Registry::open(RegistryConfig::default()).unwrap());
            let server = HttpServer::start("127.0.0.1:0", registry, 1).expect("http server");
            (server.addr(), server)
        });
        let mut bytes = prefix.into_bytes();
        bytes.extend_from_slice(&garbage);
        if terminate {
            bytes.extend_from_slice(b"\r\n\r\n");
        }
        let reply = send_raw(*addr, &bytes, terminate);
        if bytes.starts_with(b"GET /metrics HTTP/1.1\r\n\r\n") {
            // Accidentally well-formed: fine, but then it must be a 200.
            prop_assert!(reply.is_empty() || reply.starts_with(b"HTTP/1.1 200"));
        } else if !reply.is_empty() && !reply.starts_with(b"HTTP/1.1 200") {
            assert_http_rejection(&reply);
        }
        assert_http_serviceable(*addr);
    }

    /// Random lines (including long, non-UTF-8, and JSON-shaped ones)
    /// never panic the JSON-lines worker.
    #[test]
    fn random_lines_dont_kill_tcp(
        line in prop::collection::vec(0u8..=255, 0..600),
        json_shaped in any::<bool>(),
    ) {
        let mut line = line;
        static SERVER: std::sync::OnceLock<(SocketAddr, Server)> = std::sync::OnceLock::new();
        let (addr, _) = SERVER.get_or_init(|| {
            let registry = Arc::new(Registry::open(RegistryConfig::default()).unwrap());
            let server = Server::start("127.0.0.1:0", registry, 1).expect("tcp server");
            (server.addr(), server)
        });
        if json_shaped {
            let mut framed = b"{\"type\":".to_vec();
            framed.extend_from_slice(&line);
            line = framed;
        }
        line.retain(|&b| b != b'\n');
        line.push(b'\n');
        let reply = send_raw(*addr, &line, true);
        for out in String::from_utf8_lossy(&reply).lines() {
            if !out.trim().is_empty() {
                prop_assert!(out.contains("\"type\":\"error\""), "{}", out);
            }
        }
        assert_tcp_serviceable(*addr);
    }
}
