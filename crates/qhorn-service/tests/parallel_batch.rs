//! Differential proptests for the work-stealing parallel batch path.
//!
//! The `EvaluateBatch` protocol message routes through
//! [`qhorn_service::batch::execute_parallel_with_stats`]; these
//! properties pin that path to the sequential engine on **skewed**
//! signature distributions (a few signatures holding most of the
//! objects — exactly the shape that starves a static splitter) across
//! arbitrary queries and worker counts: identical ascending-id answers,
//! identical deterministic stats, and a deterministic `threads_used`.

use proptest::prelude::*;
use qhorn_core::{BoolTuple, Expr, Obj, Query, VarId, VarSet};
use qhorn_engine::exec;
use qhorn_engine::plan::CompiledQuery;
use qhorn_engine::storage::Store;
use qhorn_service::batch::execute_parallel_with_stats;

const ARITY: u16 = 5;

/// Random query over [`ARITY`] variables (any expression shape).
fn arb_query() -> impl Strategy<Value = Query> {
    let vars = || {
        prop::collection::btree_set(0..ARITY, 0..=ARITY as usize)
            .prop_map(|ids| ids.into_iter().map(VarId).collect::<VarSet>())
    };
    let universal = (0..ARITY, vars()).prop_map(|(h, mut body)| {
        body.remove(VarId(h));
        Expr::universal(body, VarId(h))
    });
    let ehorn = (0..ARITY, vars()).prop_map(|(h, mut body)| {
        body.remove(VarId(h));
        Expr::existential_horn(body, VarId(h))
    });
    let conj = vars()
        .prop_filter("non-empty", |s| !s.is_empty())
        .prop_map(Expr::conj);
    prop::collection::vec(prop_oneof![universal, ehorn, conj], 0..5)
        .prop_map(|exprs| Query::new(ARITY, exprs).expect("valid by construction"))
}

/// A random signature: a small tuple set over [`ARITY`] variables.
fn arb_signature() -> impl Strategy<Value = Obj> {
    prop::collection::vec(
        prop::collection::btree_set(0..ARITY, 0..=ARITY as usize)
            .prop_map(|ids| BoolTuple::from_true_set(ARITY, ids.into_iter().map(VarId).collect())),
        0..5,
    )
    .prop_map(|ts| Obj::new(ARITY, ts))
}

/// A skewed store: each distinct signature gets an object count drawn
/// from a heavy-tailed range (most signatures are small, a few hold
/// hundreds of objects), and insertion interleaves round-robin so the
/// group index sees them in mixed order.
fn arb_skewed_store() -> impl Strategy<Value = Store> {
    prop::collection::vec(
        (
            arb_signature(),
            // 4:1 light:heavy arms — most groups are small, but about
            // one in five dwarfs the rest (the skew a static splitter
            // serializes behind).
            prop_oneof![
                1usize..=4,
                1usize..=4,
                1usize..=4,
                1usize..=4,
                100usize..=300,
            ],
        ),
        1..=10,
    )
    .prop_map(|weighted| {
        let mut store = Store::new(ARITY);
        let mut remaining: Vec<(Obj, usize)> = weighted;
        // Round-robin over the signatures until every count is spent,
        // interleaving heavy and light groups in the insertion order.
        while remaining.iter().any(|(_, n)| *n > 0) {
            for (sig, n) in &mut remaining {
                if *n > 0 {
                    store.insert(sig.clone());
                    *n -= 1;
                }
            }
        }
        store
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel evaluation over any worker count returns exactly the
    /// sequential engine's answers (same ids, same ascending order) and
    /// merges stats deterministically.
    #[test]
    fn parallel_batch_equals_sequential_on_skewed_stores(
        q in arb_query(),
        store in arb_skewed_store(),
        workers in 0usize..=16,
    ) {
        let plan = CompiledQuery::compile(&q);
        let (expected, seq) = exec::execute_with_stats(&plan, &store);
        let (got, par) = execute_parallel_with_stats(&plan, &store, workers);

        prop_assert_eq!(&got, &expected, "answers diverge: {} workers", workers);
        prop_assert_eq!(par.objects, seq.objects);
        prop_assert_eq!(par.signatures_evaluated, seq.signatures_evaluated);
        prop_assert_eq!(par.answers, seq.answers);
        prop_assert_eq!(par.answers, got.len());
        // The pool size is a pure function of the request and the store:
        // never more workers than groups, never fewer than one.
        prop_assert_eq!(
            par.threads_used,
            workers.max(1).min(seq.signatures_evaluated.max(1)),
        );
        // Everything except the wall clock is deterministic, so two runs
        // normalized by `without_timing` are identical.
        let (_, again) = execute_parallel_with_stats(&plan, &store, workers);
        prop_assert_eq!(par.without_timing(), again.without_timing());
    }
}
