//! Lock-order contention stress: drives sweep/compaction, snapshot
//! eviction + restore, and parallel batch evaluation concurrently over
//! one registry. Under `--features lockdep` every acquisition feeds the
//! witness graph, so this doubles as the acceptance test for the
//! documented hierarchy (`shard < entry < store`, `shard < snapshots <
//! store`): any order inversion panics inside a worker thread and the
//! join below fails the test. Without the feature it is still a useful
//! plain stress test over the same interleavings.
//!
//! The negative counterpart — a deliberate inversion asserting the
//! detector fires and names both sites — lives with the detector in
//! `qhorn-lockdep/src/lib.rs` (`order_inversion_fires_with_both_sites`).

use qhorn_core::Response;
use qhorn_engine::session::LearnerKind;
use qhorn_service::dispatch::dispatch;
use qhorn_service::proto::{Reply, Request, StepReply};
use qhorn_service::registry::{Registry, RegistryConfig};
use qhorn_service::store::{FsyncPolicy, StoreConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("lockdep-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Short TTL so drivers sleeping past it get evicted mid-dialogue, and
/// a tiny compaction threshold so sweeps compact the durable log while
/// other threads are appending to it.
fn contended_config(dir: &std::path::Path) -> RegistryConfig {
    RegistryConfig {
        shards: 4,
        ttl: Duration::from_millis(50),
        store: Some(StoreConfig {
            fsync: FsyncPolicy::EveryN(16),
            segment_max_bytes: 4096,
            compact_threshold_bytes: 4096,
            ..StoreConfig::new(dir.to_path_buf())
        }),
        ..Default::default()
    }
}

/// Answers questions (alternating labels) until the session finishes or
/// `budget` answers have been sent. Returns the last step seen.
fn answer_some(registry: &Arc<Registry>, session: u64, mut step: StepReply, budget: usize) {
    for i in 0..budget {
        match step {
            StepReply::Question { .. } => {
                let response = if i % 2 == 0 {
                    Response::Answer
                } else {
                    Response::NonAnswer
                };
                match dispatch(registry, Request::Answer { session, response }) {
                    Reply::Step { step: next, .. } => step = next,
                    // Any non-step reply (e.g. the session failed on an
                    // inconsistent transcript) ends the dialogue; the
                    // locking work is already done.
                    _ => return,
                }
            }
            _ => return,
        }
    }
}

#[test]
fn contended_sweep_restore_and_batch_hold_the_lock_order() {
    let dir = temp_dir("main");
    let registry = Arc::new(Registry::open(contended_config(&dir)).expect("open registry"));
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();

    // Session drivers: create, answer, idle past the TTL (so the
    // sweeper evicts the session to a snapshot + durable log), then
    // touch it again to force the restore path, answer more, close.
    for d in 0..2u64 {
        let registry = Arc::clone(&registry);
        workers.push(std::thread::spawn(move || {
            for round in 0..6u64 {
                let dataset = if (d + round) % 2 == 0 {
                    "chocolates"
                } else {
                    "cellars"
                };
                let created = dispatch(
                    &registry,
                    Request::CreateSession {
                        dataset: dataset.into(),
                        size: 30,
                        learner: LearnerKind::RolePreserving,
                        max_questions: Some(10_000),
                    },
                );
                let Reply::Created { session, step } = created else {
                    panic!("create failed: {created:?}");
                };
                answer_some(&registry, session, step, 3);
                // Idle past the TTL so a concurrent sweep evicts us.
                std::thread::sleep(Duration::from_millis(80));
                // Touching the session restores it from the snapshot or
                // durable log while sweeps/batches run on other threads.
                match dispatch(&registry, Request::NextQuestion { session }) {
                    Reply::Step { step, .. } => answer_some(&registry, session, step, 4),
                    other => panic!("restore touch failed: {other:?}"),
                }
                let _ = dispatch(&registry, Request::CloseSession { session });
            }
        }));
    }

    // Batch evaluators: parallel scans through the engine pool, taking
    // catalog and stats locks interleaved with the drivers above.
    for _ in 0..2 {
        let registry = Arc::clone(&registry);
        workers.push(std::thread::spawn(move || {
            for _ in 0..8 {
                let reply = dispatch(
                    &registry,
                    Request::EvaluateBatch {
                        session: None,
                        dataset: Some("cellars".into()),
                        size: 300,
                        query: Some("all x1 -> x2; some x3".into()),
                        workers: 4,
                    },
                );
                let Reply::Batch { stats, .. } = reply else {
                    panic!("batch failed: {reply:?}");
                };
                assert_eq!(stats.objects, 300);
            }
        }));
    }

    // Sweeper: evicts idle sessions and compacts the (tiny-threshold)
    // durable log while everyone else is mid-flight.
    let sweeper = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let report = registry.sweep();
                assert!(
                    report.compact_error.is_none(),
                    "compaction failed: {:?}",
                    report.compact_error
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        })
    };

    // Stats poller: reads every telemetry lock (shards, snapshots,
    // pools, metrics stripes) against the writers above.
    let poller = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match dispatch(&registry, Request::Stats) {
                    Reply::Stats(_) => {}
                    other => panic!("stats failed: {other:?}"),
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    // A panicking worker — including a lockdep order-violation panic —
    // fails the test here.
    for worker in workers {
        worker.join().expect("worker thread panicked");
    }
    stop.store(true, Ordering::Relaxed);
    sweeper.join().expect("sweeper panicked");
    poller.join().expect("poller panicked");

    // The interleavings we claim to have stressed actually happened.
    let stats = registry.stats();
    assert!(stats.created >= 12, "drivers created sessions: {stats:?}");
    assert!(stats.evicted > 0, "sweeps evicted idle sessions: {stats:?}");
    assert!(
        stats.restored > 0,
        "touches restored evicted sessions: {stats:?}"
    );
    assert!(stats.batch_runs >= 16, "batch evaluations ran: {stats:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
