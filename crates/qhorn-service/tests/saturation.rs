//! Saturation observability end to end: drive a deliberately undersized
//! HTTP worker pool into queueing, watch `health` report `degraded`/
//! `saturated` with non-zero queue-depth and lock-wait signals through an
//! unsaturated probe transport, and watch it return to `ok` once the load
//! drops. Also pins the always-on profile's accounting invariant (per-
//! layer self times cover ≥ 90 % of traced dispatch wall time) and the
//! runtime trace-config endpoint's validation on both transports.

use qhorn_core::Query;
use qhorn_engine::session::LearnerKind;
use qhorn_service::proto::{Reply, Request, StepReply};
use qhorn_service::registry::{Registry, RegistryConfig};
use qhorn_service::{Client, HttpServer, Server};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Polls `f` for up to five seconds.
fn eventually(mut f: impl FnMut() -> bool, what: &str) {
    for _ in 0..200 {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("timed out waiting for {what}");
}

fn health(client: &mut Client) -> qhorn_service::registry::HealthReport {
    match client.request(&Request::Health).expect("health request") {
        Reply::Health(report) => report,
        other => panic!("unexpected reply {other:?}"),
    }
}

/// Answers a session's questions against `goal` until it learns.
fn drive_to_learned(client: &mut Client, session: u64, mut step: StepReply, goal: &Query) {
    while let StepReply::Question { question, .. } = step {
        let reply = client
            .request(&Request::Answer {
                session,
                response: goal.eval(&question),
            })
            .expect("answer");
        step = match reply {
            Reply::Step { step, .. } => step,
            other => panic!("unexpected reply {other:?}"),
        };
    }
    assert!(matches!(step, StepReply::Learned { .. }), "{step:?}");
}

/// The conformance-style saturation scenario: a 1-worker HTTP server
/// under 8 idle-held connections must report `saturated` (full busy set
/// plus queueing) through a TCP probe on the same registry, then recover
/// to `ok` when the connections drop.
#[test]
fn health_saturates_under_load_and_recovers() {
    let registry = Arc::new(Registry::open(RegistryConfig::default()).unwrap());
    let loaded = HttpServer::start("127.0.0.1:0", Arc::clone(&registry), 1).unwrap();
    let probe_server = Server::start("127.0.0.1:0", Arc::clone(&registry), 2).unwrap();
    let mut probe = Client::connect(probe_server.addr()).expect("probe connect");

    // A little session traffic first, so the registry's stripe-lock
    // telemetry has something to report.
    let (session, _) = probe
        .step(&Request::CreateSession {
            dataset: "chocolates".into(),
            size: 20,
            learner: LearnerKind::Qhorn1,
            max_questions: Some(10_000),
        })
        .expect("create");
    let _ = probe
        .request(&Request::NextQuestion { session })
        .expect("next");

    let baseline = health(&mut probe);
    assert_eq!(baseline.verdict, "ok", "{baseline:?}");
    assert!(baseline.saturation.lock_waits > 0, "{baseline:?}");

    // Hold 8 connections against the single worker: one occupies it, the
    // rest sit in the accept queue.
    let held: Vec<TcpStream> = (0..8)
        .map(|_| TcpStream::connect(loaded.addr()).expect("connect"))
        .collect();
    let mut observed = None;
    eventually(
        || {
            let report = health(&mut probe);
            let pool = report
                .saturation
                .pools
                .iter()
                .find(|p| p.name == "http")
                .expect("http pool registered")
                .clone();
            let saturated =
                report.verdict == "saturated" && pool.queue_depth > 0 && pool.busy >= pool.workers;
            if saturated {
                observed = Some((report, pool));
            }
            saturated
        },
        "health to report saturated",
    );
    let (report, pool) = observed.unwrap();
    assert_eq!(pool.workers, 1);
    assert!(pool.queue_peak >= pool.queue_depth, "{pool:?}");
    assert!(report.saturation.lock_waits > 0, "{report:?}");

    // Dropping the connections drains the queue and the verdict recovers.
    drop(held);
    eventually(
        || {
            let report = health(&mut probe);
            report.verdict == "ok"
                && report
                    .saturation
                    .pools
                    .iter()
                    .all(|p| p.queue_depth == 0 && p.busy < p.workers.max(2))
        },
        "health to recover to ok",
    );

    // The queue telemetry balances once drained: everything enqueued was
    // eventually dequeued, and wait time was actually measured.
    let report = health(&mut probe);
    let pool = report
        .saturation
        .pools
        .iter()
        .find(|p| p.name == "http")
        .unwrap();
    assert_eq!(pool.enqueued, pool.dequeued, "{pool:?}");
    assert!(pool.enqueued >= 8, "{pool:?}");
    assert!(pool.queue_wait_nanos > 0, "{pool:?}");

    loaded.shutdown();
    probe_server.shutdown();
}

/// The always-on profile must account for ≥ 90 % of traced dispatch wall
/// time: per-layer self times partition each span's duration, so their
/// sum covers the dispatch roots' total (retro learner spans may push it
/// over, never under).
#[test]
fn profile_accounts_for_at_least_ninety_percent_of_dispatch_time() {
    let registry = Arc::new(Registry::open(RegistryConfig::default()).unwrap());
    let server = Server::start("127.0.0.1:0", Arc::clone(&registry), 1).unwrap();
    let mut client = Client::connect(server.addr()).expect("connect");

    // Zero the accumulators, then drive a full dialogue plus a batch
    // evaluation through the wire so every layer sees traffic.
    let reply = client
        .request(&Request::Profile { reset: true })
        .expect("reset profile");
    assert!(matches!(reply, Reply::Profile { .. }), "{reply:?}");

    let goal: Query = qhorn_lang::parse_with_arity("all x1; some x2 x3", 3).unwrap();
    let (session, step) = client
        .step(&Request::CreateSession {
            dataset: "chocolates".into(),
            size: 20,
            learner: LearnerKind::Qhorn1,
            max_questions: Some(10_000),
        })
        .expect("create");
    drive_to_learned(&mut client, session, step, &goal);
    let reply = client
        .request(&Request::EvaluateBatch {
            session: Some(session),
            dataset: None,
            size: 0,
            query: None,
            workers: 2,
        })
        .expect("evaluate");
    assert!(matches!(reply, Reply::Batch { .. }), "{reply:?}");

    let layers = match client
        .request(&Request::Profile { reset: false })
        .expect("read profile")
    {
        Reply::Profile { layers, .. } => layers,
        other => panic!("unexpected reply {other:?}"),
    };
    let by_layer = |name: &str| layers.iter().find(|l| l.layer == name).expect("layer row");
    let dispatch = by_layer("dispatch");
    assert!(dispatch.spans >= 3, "{layers:?}"); // create + answers + batch
    assert!(dispatch.total_nanos > 0, "{layers:?}");
    // Layer attribution: the session dialogue crossed the registry,
    // driver, and learner layers; the batch run crossed the kernel.
    for name in ["registry", "driver", "learner", "kernel"] {
        assert!(by_layer(name).total_nanos > 0, "{name} empty: {layers:?}");
    }
    let self_sum: u64 = layers.iter().map(|l| l.self_nanos).sum();
    assert!(
        self_sum as f64 >= 0.9 * dispatch.total_nanos as f64,
        "profile accounts for {self_sum} of {} dispatch nanos: {layers:?}",
        dispatch.total_nanos
    );
}

/// `set_trace_config` applies in-bounds knobs (echoing the effective
/// pair), rejects out-of-bounds ones on both transports, and maps onto a
/// 422 on HTTP.
#[test]
fn trace_config_validates_on_both_transports() {
    let registry = Arc::new(Registry::open(RegistryConfig::default()).unwrap());
    let lines = Server::start("127.0.0.1:0", Arc::clone(&registry), 1).unwrap();
    let http = HttpServer::start("127.0.0.1:0", Arc::clone(&registry), 1).unwrap();

    let mut tcp = Client::connect(lines.addr()).expect("connect tcp");
    let reply = tcp
        .request(&Request::SetTraceConfig {
            slow_threshold_ms: Some(250),
            sample_every: Some(5),
        })
        .expect("set config");
    assert_eq!(
        reply,
        Reply::TraceConfig {
            slow_threshold_ms: 250,
            sample_every: 5,
        }
    );
    // A partial update keeps the other knob.
    let reply = tcp
        .request(&Request::SetTraceConfig {
            slow_threshold_ms: None,
            sample_every: Some(0),
        })
        .expect("set config");
    assert_eq!(
        reply,
        Reply::TraceConfig {
            slow_threshold_ms: 250,
            sample_every: 0,
        }
    );
    // Nonsense is rejected without applying anything (JSON-lines wraps
    // the failure as an `error` reply)…
    let reply = tcp
        .request(&Request::SetTraceConfig {
            slow_threshold_ms: Some(0),
            sample_every: Some(7),
        })
        .expect("send bad config");
    assert!(
        matches!(&reply, Reply::Error { message } if message.contains("slow_threshold_ms")),
        "{reply:?}"
    );
    let mut web = Client::connect_http(http.addr()).expect("connect http");
    let reply = web
        .request(&Request::SetTraceConfig {
            slow_threshold_ms: None,
            sample_every: Some(2_000_000),
        })
        .expect("send bad config");
    assert!(
        matches!(&reply, Reply::Error { message } if message.contains("sample_every")),
        "{reply:?}"
    );
    // …and the config is untouched.
    let reply = tcp
        .request(&Request::SetTraceConfig {
            slow_threshold_ms: None,
            sample_every: None,
        })
        .expect("read config");
    assert_eq!(
        reply,
        Reply::TraceConfig {
            slow_threshold_ms: 250,
            sample_every: 0,
        }
    );

    // The raw HTTP status for an out-of-bounds config is 422. Drop the
    // keep-alive client first: it would otherwise pin the single worker.
    drop(web);
    use std::io::{Read, Write};
    let mut raw = TcpStream::connect(http.addr()).unwrap();
    let body = r#"{"slow_threshold_ms":0}"#;
    let head = format!(
        "POST /v1/trace/config HTTP/1.1\r\nHost: qhorn\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    raw.write_all(head.as_bytes()).unwrap();
    raw.write_all(body.as_bytes()).unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 422 "),
        "{}",
        response.lines().next().unwrap_or("")
    );

    lines.shutdown();
    http.shutdown();
}

/// Per-session resource accounting: a full dialogue leaves non-zero
/// question, transcript, and driver-time counters, a batch run charges
/// kernel time, and both transports agree on the reply.
#[test]
fn session_resources_account_a_full_dialogue() {
    let registry = Arc::new(Registry::open(RegistryConfig::default()).unwrap());
    let lines = Server::start("127.0.0.1:0", Arc::clone(&registry), 1).unwrap();
    let http = HttpServer::start("127.0.0.1:0", Arc::clone(&registry), 1).unwrap();
    let mut client = Client::connect(lines.addr()).expect("connect");

    let goal: Query = qhorn_lang::parse_with_arity("all x1; some x2 x3", 3).unwrap();
    let (session, step) = client
        .step(&Request::CreateSession {
            dataset: "chocolates".into(),
            size: 20,
            learner: LearnerKind::Qhorn1,
            max_questions: Some(10_000),
        })
        .expect("create");
    drive_to_learned(&mut client, session, step, &goal);
    let reply = client
        .request(&Request::EvaluateBatch {
            session: Some(session),
            dataset: None,
            size: 0,
            query: None,
            workers: 2,
        })
        .expect("evaluate");
    assert!(matches!(reply, Reply::Batch { .. }), "{reply:?}");

    let resources = match client
        .request(&Request::SessionResources { session })
        .expect("resources")
    {
        Reply::SessionResources(r) => r,
        other => panic!("unexpected reply {other:?}"),
    };
    assert_eq!(resources.session, session);
    assert_eq!(resources.state, "done");
    assert!(resources.questions > 0, "{resources:?}");
    assert!(resources.transcript_bytes > 0, "{resources:?}");
    assert!(resources.driver_nanos > 0, "{resources:?}");
    assert!(resources.eval_nanos > 0, "{resources:?}");
    let phase_sum: u64 = resources.questions_by_phase.iter().map(|(_, n)| n).sum();
    assert!(phase_sum > 0, "{resources:?}");
    // Storeless registry: no durable bytes to account.
    assert_eq!(resources.store_bytes, 0, "{resources:?}");

    // Both transports serve the same accounting (modulo the last-touch
    // bump the first read performed).
    let mut web = Client::connect_http(http.addr()).expect("connect http");
    let again = match web
        .request(&Request::SessionResources { session })
        .expect("resources via http")
    {
        Reply::SessionResources(r) => r,
        other => panic!("unexpected reply {other:?}"),
    };
    assert_eq!(again, resources);

    // Unknown sessions are a clean protocol error.
    let reply = client
        .request(&Request::SessionResources { session: 999 })
        .expect("bad session");
    assert!(matches!(reply, Reply::Error { .. }), "{reply:?}");

    lines.shutdown();
    http.shutdown();
}
