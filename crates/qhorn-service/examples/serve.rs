//! Runs the learning server on local ports — the JSON-lines TCP frontend
//! and the HTTP/1.1 gateway — for driving with `nc` or `curl`:
//!
//! ```sh
//! cargo run -p qhorn-service --example serve -- 127.0.0.1:7878
//! printf '{"type":"stats"}\n' | nc 127.0.0.1 7878
//! curl -s localhost:7879/v1/stats
//! curl -s localhost:7879/metrics
//! ```
//!
//! An optional second argument enables durability: sessions are logged
//! to that directory and recovered on the next start. An optional third
//! argument picks the HTTP bind address (default `127.0.0.1:0`).
//!
//! ```sh
//! cargo run -p qhorn-service --example serve -- 127.0.0.1:7878 ./sessions 127.0.0.1:7879
//! ```

use qhorn_service::store::StoreConfig;
use qhorn_service::{HttpServer, Registry, RegistryConfig, Server};
use std::sync::Arc;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:0".into());
    let store = std::env::args().nth(2).map(StoreConfig::new);
    let http_addr = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "127.0.0.1:0".into());
    let config = RegistryConfig {
        store,
        ..RegistryConfig::default()
    };
    let registry = Arc::new(Registry::open(config).expect("open registry"));
    let recovered = registry.stats().snapshots;
    let server = Server::start(&addr, Arc::clone(&registry), 4).expect("bind");
    let http = HttpServer::start(&http_addr, registry, 4).expect("bind http");
    println!(
        "listening on {} (tcp json-lines) and {} (http; metrics at /metrics) — {recovered} sessions recovered",
        server.addr(),
        http.addr()
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
