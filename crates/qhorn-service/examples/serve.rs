//! Runs the learning server on a local port, for driving with any
//! JSON-lines TCP client:
//!
//! ```sh
//! cargo run -p qhorn-service --example serve -- 127.0.0.1:7878
//! printf '{"type":"stats"}\n' | nc 127.0.0.1 7878
//! ```
//!
//! An optional second argument enables durability: sessions are logged
//! to that directory and recovered on the next start.
//!
//! ```sh
//! cargo run -p qhorn-service --example serve -- 127.0.0.1:7878 ./sessions
//! ```

use qhorn_service::store::StoreConfig;
use qhorn_service::{Registry, RegistryConfig, Server};
use std::sync::Arc;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:0".into());
    let store = std::env::args().nth(2).map(StoreConfig::new);
    let config = RegistryConfig {
        store,
        ..RegistryConfig::default()
    };
    let registry = Arc::new(Registry::open(config).expect("open registry"));
    let recovered = registry.stats().snapshots;
    let server = Server::start(&addr, registry, 4).expect("bind");
    println!(
        "listening on {} ({recovered} sessions recovered)",
        server.addr()
    );
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
