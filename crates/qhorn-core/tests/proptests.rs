//! Property-based tests for the core data structures and semantic
//! invariants (proptest).

use proptest::prelude::*;
use qhorn_core::query::generate::{all_objects, all_subsets};
use qhorn_core::query::{classes, equiv, Expr, NormalForm, Query};
use qhorn_core::{BoolTuple, Obj, VarId, VarSet};

fn arb_varset(n: u16) -> impl Strategy<Value = VarSet> {
    prop::collection::btree_set(0..n, 0..=n as usize)
        .prop_map(|ids| ids.into_iter().map(VarId).collect())
}

fn arb_tuple(n: u16) -> impl Strategy<Value = BoolTuple> {
    arb_varset(n).prop_map(move |s| BoolTuple::from_true_set(n, s))
}

fn arb_object(n: u16) -> impl Strategy<Value = Obj> {
    prop::collection::vec(arb_tuple(n), 0..6).prop_map(move |ts| Obj::new(n, ts))
}

/// Random syntactic role-preserving query over `n` variables: heads are
/// the upper variable range, bodies drawn from the lower.
fn arb_role_preserving(n: u16) -> impl Strategy<Value = Query> {
    let heads = n / 3 + 1;
    let non_heads = n - heads;
    let universal =
        (non_heads..n, arb_varset(non_heads)).prop_map(|(h, body)| Expr::universal(body, VarId(h)));
    let conj = arb_varset(n)
        .prop_filter("non-empty", |s| !s.is_empty())
        .prop_map(Expr::conj);
    prop::collection::vec(prop_oneof![universal, conj], 0..6)
        .prop_map(move |exprs| Query::new(n, exprs).expect("valid by construction"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- VarSet laws ----------------

    #[test]
    fn varset_union_is_commutative_and_idempotent(a in arb_varset(40), b in arb_varset(40)) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert!(a.is_subset(&a.union(&b)));
    }

    #[test]
    fn varset_difference_laws(a in arb_varset(40), b in arb_varset(40)) {
        let d = a.difference(&b);
        prop_assert!(d.is_disjoint(&b));
        prop_assert_eq!(d.union(&a.intersection(&b)), a.clone());
        prop_assert_eq!(
            a.symmetric_difference(&b),
            a.difference(&b).union(&b.difference(&a))
        );
    }

    #[test]
    fn varset_len_inclusion_exclusion(a in arb_varset(40), b in arb_varset(40)) {
        prop_assert_eq!(
            a.union(&b).len() + a.intersection(&b).len(),
            a.len() + b.len()
        );
    }

    #[test]
    fn varset_iteration_round_trips(a in arb_varset(70)) {
        let back: VarSet = a.iter().collect();
        prop_assert_eq!(back, a.clone());
        let v = a.to_vec();
        prop_assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
    }

    // ---------------- Tuple / lattice laws ----------------

    #[test]
    fn tuple_children_parents_inverse(t in arb_tuple(10)) {
        for c in t.children() {
            prop_assert_eq!(c.level(), t.level() + 1);
            prop_assert!(c.in_downset_of(&t));
            prop_assert!(c.parents().contains(&t));
        }
        for p in t.parents() {
            prop_assert!(t.in_downset_of(&p));
        }
    }

    #[test]
    fn tuple_bits_round_trip(t in arb_tuple(12)) {
        prop_assert_eq!(BoolTuple::from_bits(&t.to_bits()), t);
    }

    // ---------------- Query semantics ----------------

    #[test]
    fn adding_tuples_preserves_existential_sat(q in arb_role_preserving(6), obj in arb_object(6), extra in arb_tuple(6)) {
        // Monotonicity of the existential part: if an object is an answer
        // and the added tuple violates no universal expression, the
        // enlarged object is still an answer.
        let violates = q
            .universal_horns()
            .any(|(b, h)| extra.satisfies_all(b) && !extra.get(h));
        if q.accepts(&obj) && !violates {
            prop_assert!(q.accepts(&obj.with_tuple(extra)));
        }
    }

    #[test]
    fn normal_form_is_idempotent(q in arb_role_preserving(6)) {
        let nf = q.normal_form();
        let again = nf.to_query().normal_form();
        prop_assert_eq!(nf, again);
    }

    #[test]
    fn normal_form_closure_is_monotone_and_idempotent(q in arb_role_preserving(6), s in arb_varset(6)) {
        let nf = q.normal_form();
        let c = nf.close(&s);
        prop_assert!(s.is_subset(&c));
        prop_assert_eq!(nf.close(&c), c);
    }

    #[test]
    fn classification_is_monotone_under_class_inclusion(q in arb_role_preserving(6)) {
        // Everything we generate is at least role-preserving.
        prop_assert!(classes::is_role_preserving(&q));
        if classes::is_qhorn1(&q) {
            prop_assert_eq!(classes::classify(&q), qhorn_core::QueryClass::Qhorn1);
        }
    }

    #[test]
    fn equivalence_is_consistent_with_eval(q in arb_role_preserving(4), obj in arb_object(4)) {
        let canon = q.normal_form().to_query();
        prop_assert_eq!(q.accepts(&obj), canon.accepts(&obj));
        prop_assert!(equiv::equivalent(&q, &canon));
    }

    #[test]
    fn causal_density_bounded_by_dominant_universal_count(q in arb_role_preserving(7)) {
        let nf = q.normal_form();
        prop_assert!(nf.causal_density() <= nf.universals().len());
    }

    // ---------------- Evaluation kernel ----------------

    #[test]
    fn compiled_kernel_agrees_with_one_shot_eval(q in arb_role_preserving(8), obj in arb_object(8)) {
        // The compile-once path (normalized checks) and the one-shot path
        // (raw expressions) are different pipelines through the kernel;
        // they must agree everywhere.
        let plan = qhorn_core::kernel::CompiledQuery::compile(&q);
        prop_assert_eq!(plan.matches(&obj), q.accepts(&obj), "{} on {}", q, obj);
        let matrix = qhorn_core::kernel::TupleMatrix::build(&obj);
        prop_assert_eq!(plan.matches_matrix(&matrix), q.accepts(&obj));
    }

    #[test]
    fn compiled_oracle_matches_query_oracle(q in arb_role_preserving(5), obj in arb_object(5)) {
        use qhorn_core::oracle::{CompiledOracle, MembershipOracle, QueryOracle};
        let mut compiled = CompiledOracle::new(q.clone());
        let mut wrapped = QueryOracle::new(q.clone());
        prop_assert_eq!(compiled.ask(&obj), wrapped.ask(&obj));
        prop_assert_eq!(compiled.ask(&obj), q.eval(&obj));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn brute_force_agrees_with_normal_form_equivalence(
        a in arb_role_preserving(3),
        b in arb_role_preserving(3),
    ) {
        prop_assert_eq!(
            equiv::equivalent(&a, &b),
            equiv::equivalent_brute_force(&a, &b),
            "Prop 4.1 violated for {} vs {}", a, b
        );
    }

    #[test]
    fn normal_form_existentials_are_an_antichain(q in arb_role_preserving(6)) {
        let nf: NormalForm = q.normal_form();
        let conjs: Vec<&VarSet> = nf.existentials().iter().collect();
        for (i, a) in conjs.iter().enumerate() {
            for b in conjs.iter().skip(i + 1) {
                prop_assert!(!a.is_subset(b) && !b.is_subset(a), "{a} vs {b} comparable");
            }
        }
        // And per-head bodies are an antichain too (R2).
        for h in nf.universal_heads().iter() {
            let bodies = nf.bodies_of(h);
            for (i, a) in bodies.iter().enumerate() {
                for b in bodies.iter().skip(i + 1) {
                    prop_assert!(!a.is_subset(b) && !b.is_subset(a));
                }
            }
        }
    }
}

/// Deterministic exhaustive check kept out of proptest: dominance pruning
/// never changes acceptance on any object (n = 3, a structured query set).
#[test]
fn normalization_exhaustive_small() {
    let universe = all_subsets(&VarSet::full(3));
    for body in &universe {
        for h in 0..3u16 {
            let head = VarId(h);
            if body.contains(head) {
                continue;
            }
            for conj in universe.iter().filter(|c| !c.is_empty()) {
                let q = Query::new(
                    3,
                    [
                        Expr::universal(body.clone(), head),
                        Expr::conj(conj.clone()),
                    ],
                )
                .unwrap();
                let canon = q.normal_form().to_query();
                for obj in all_objects(3) {
                    assert_eq!(q.accepts(&obj), canon.accepts(&obj), "{q} on {obj}");
                }
            }
        }
    }
}
