//! Membership-question oracles — the "user" in the learning model (§2.1.2).
//!
//! A learner constructs membership questions (objects) and an oracle labels
//! each as an answer or a non-answer for the *intended* query. The paper's
//! ideal user is [`QueryOracle`], backed by a hidden target query.
//! Decorators add the instrumentation the experiments need:
//!
//! * [`CountingOracle`] — counts questions and tuples (the paper's cost
//!   measures);
//! * [`TranscriptOracle`] — records every (question, response) pair, which
//!   powers the response-history / restart workflow discussed in §5;
//! * [`LimitOracle`] — enforces a question budget (tests of the complexity
//!   bounds use it to fail fast on runaway learners);
//! * [`FnOracle`] — wraps a closure (adversaries, brute-force cross-checks).
//!
//! [`QueryOracle`] compiles its hidden target **once** through the
//! evaluation kernel ([`CompiledOracle`]) instead of re-walking the query
//! AST on every membership question, so a learning session's thousands of
//! questions are answered with allocation-free word checks.

use crate::kernel;
use crate::object::{Obj, Response};
use crate::query::Query;

/// A membership oracle that compiles its target query once per session
/// and answers every question with the kernel's word-level checks.
///
/// This is what [`QueryOracle`] uses internally; it is public for call
/// sites that want the compiled plan without the strict/relaxed switch.
#[derive(Clone, Debug)]
pub struct CompiledOracle {
    target: Query,
    plan: kernel::CompiledQuery,
}

impl CompiledOracle {
    /// Compiles `target` under full qhorn semantics (guarantee clauses
    /// enforced), matching [`Query::accepts`].
    #[must_use]
    pub fn new(target: Query) -> Self {
        let plan = kernel::CompiledQuery::compile(&target);
        CompiledOracle { target, plan }
    }

    /// Compiles `target` under the footnote-1 relaxation, matching
    /// [`Query::accepts_without_universal_guarantees`].
    #[must_use]
    pub fn relaxed(target: Query) -> Self {
        let plan = kernel::CompiledQuery::compile_relaxed(&target);
        CompiledOracle { target, plan }
    }

    /// The hidden target query.
    #[must_use]
    pub fn target(&self) -> &Query {
        &self.target
    }

    /// The compiled plan answering the questions.
    #[must_use]
    pub fn plan(&self) -> &kernel::CompiledQuery {
        &self.plan
    }
}

impl MembershipOracle for CompiledOracle {
    fn ask(&mut self, question: &Obj) -> Response {
        Response::from_bool(self.plan.matches(question))
    }
}

/// Anything that can label membership questions.
pub trait MembershipOracle {
    /// Labels one membership question.
    fn ask(&mut self, question: &Obj) -> Response;
}

impl<T: MembershipOracle + ?Sized> MembershipOracle for &mut T {
    fn ask(&mut self, question: &Obj) -> Response {
        (**self).ask(question)
    }
}

impl MembershipOracle for Box<dyn MembershipOracle + '_> {
    fn ask(&mut self, question: &Obj) -> Response {
        (**self).ask(question)
    }
}

/// The ideal user: labels questions according to a hidden target query,
/// compiled once through the kernel.
#[derive(Clone, Debug)]
pub struct QueryOracle {
    inner: CompiledOracle,
}

impl QueryOracle {
    /// An oracle answering according to `target` under full qhorn semantics
    /// (guarantee clauses enforced).
    #[must_use]
    pub fn new(target: Query) -> Self {
        QueryOracle {
            inner: CompiledOracle::new(target),
        }
    }

    /// An oracle using the footnote-1 relaxation: universal expressions do
    /// not require guarantee witnesses. Learning algorithms remain correct
    /// under either semantics; this variant additionally allows empty-set
    /// questions.
    #[must_use]
    pub fn relaxed(target: Query) -> Self {
        QueryOracle {
            inner: CompiledOracle::relaxed(target),
        }
    }

    /// The hidden target (tests and experiment harnesses use this; a real
    /// user interface would not expose it).
    #[must_use]
    pub fn target(&self) -> &Query {
        self.inner.target()
    }
}

impl MembershipOracle for QueryOracle {
    fn ask(&mut self, question: &Obj) -> Response {
        self.inner.ask(question)
    }
}

/// Wraps a closure as an oracle.
pub struct FnOracle<F: FnMut(&Obj) -> Response>(pub F);

impl<F: FnMut(&Obj) -> Response> MembershipOracle for FnOracle<F> {
    fn ask(&mut self, question: &Obj) -> Response {
        (self.0)(question)
    }
}

/// Question/tuple accounting (the paper's cost measures: number of
/// membership questions, tuples per question).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Total membership questions asked.
    pub questions: usize,
    /// Total tuples across all questions.
    pub tuples: usize,
    /// Largest single question, in tuples.
    pub max_tuples_per_question: usize,
}

/// Counts questions and tuples flowing to an inner oracle.
#[derive(Clone, Debug)]
pub struct CountingOracle<O> {
    inner: O,
    stats: OracleStats,
}

impl<O: MembershipOracle> CountingOracle<O> {
    /// Wraps `inner` with counting.
    #[must_use]
    pub fn new(inner: O) -> Self {
        CountingOracle {
            inner,
            stats: OracleStats::default(),
        }
    }

    /// The statistics so far.
    #[must_use]
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// Consumes the wrapper, returning the inner oracle and the statistics.
    pub fn into_parts(self) -> (O, OracleStats) {
        (self.inner, self.stats)
    }
}

impl<O: MembershipOracle> MembershipOracle for CountingOracle<O> {
    fn ask(&mut self, question: &Obj) -> Response {
        self.stats.questions += 1;
        self.stats.tuples += question.len();
        self.stats.max_tuples_per_question = self.stats.max_tuples_per_question.max(question.len());
        self.inner.ask(question)
    }
}

/// Records the full transcript of questions and responses.
///
/// DataPlay-style interfaces show the user their response history so that
/// mistakes can be corrected and learning restarted from the point of error
/// (§5); [`crate::oracle::ReplayOracle`] replays a corrected transcript.
#[derive(Clone, Debug)]
pub struct TranscriptOracle<O> {
    inner: O,
    transcript: Vec<(Obj, Response)>,
}

impl<O: MembershipOracle> TranscriptOracle<O> {
    /// Wraps `inner` with transcript recording.
    #[must_use]
    pub fn new(inner: O) -> Self {
        TranscriptOracle {
            inner,
            transcript: Vec::new(),
        }
    }

    /// The recorded (question, response) pairs, in order.
    #[must_use]
    pub fn transcript(&self) -> &[(Obj, Response)] {
        &self.transcript
    }

    /// Consumes the wrapper, returning the transcript.
    #[must_use]
    pub fn into_transcript(self) -> Vec<(Obj, Response)> {
        self.transcript
    }
}

impl<O: MembershipOracle> MembershipOracle for TranscriptOracle<O> {
    fn ask(&mut self, question: &Obj) -> Response {
        let r = self.inner.ask(question);
        self.transcript.push((question.clone(), r));
        r
    }
}

/// Serves responses from a (possibly corrected) transcript, falling back to
/// an inner oracle for novel questions.
///
/// This implements §5's restart-from-error workflow: replaying a corrected
/// transcript re-runs the learner without re-asking the user questions whose
/// answers are already known.
#[derive(Clone, Debug)]
pub struct ReplayOracle<O> {
    inner: O,
    cache: std::collections::HashMap<Obj, Response>,
    replayed: usize,
    fresh: usize,
}

impl<O: MembershipOracle> ReplayOracle<O> {
    /// Builds a replay oracle from a transcript (later entries win on
    /// duplicates, so corrections are appended).
    #[must_use]
    pub fn new(inner: O, transcript: impl IntoIterator<Item = (Obj, Response)>) -> Self {
        ReplayOracle {
            inner,
            cache: transcript.into_iter().collect(),
            replayed: 0,
            fresh: 0,
        }
    }

    /// Number of questions served from the transcript.
    #[must_use]
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// Number of questions forwarded to the inner oracle.
    #[must_use]
    pub fn fresh(&self) -> usize {
        self.fresh
    }
}

impl<O: MembershipOracle> MembershipOracle for ReplayOracle<O> {
    fn ask(&mut self, question: &Obj) -> Response {
        if let Some(&r) = self.cache.get(question) {
            self.replayed += 1;
            return r;
        }
        self.fresh += 1;
        let r = self.inner.ask(question);
        self.cache.insert(question.clone(), r);
        r
    }
}

/// Enforces a hard question budget.
///
/// # Panics
/// `ask` panics once the budget is exceeded. Complexity tests use this to
/// turn "the learner asks too many questions" into an immediate failure.
#[derive(Clone, Debug)]
pub struct LimitOracle<O> {
    inner: O,
    remaining: usize,
}

impl<O: MembershipOracle> LimitOracle<O> {
    /// Wraps `inner` with a budget of `max_questions`.
    #[must_use]
    pub fn new(inner: O, max_questions: usize) -> Self {
        LimitOracle {
            inner,
            remaining: max_questions,
        }
    }

    /// Questions left in the budget.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl<O: MembershipOracle> MembershipOracle for LimitOracle<O> {
    fn ask(&mut self, question: &Obj) -> Response {
        assert!(self.remaining > 0, "question budget exhausted");
        self.remaining -= 1;
        self.inner.ask(question)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Expr;
    use crate::varset;

    fn target() -> Query {
        Query::new(2, [Expr::conj(varset![1, 2])]).unwrap()
    }

    #[test]
    fn query_oracle_labels_by_target() {
        let mut o = QueryOracle::new(target());
        assert_eq!(o.ask(&Obj::from_bits("11")), Response::Answer);
        assert_eq!(o.ask(&Obj::from_bits("10 01")), Response::NonAnswer);
    }

    #[test]
    fn relaxed_oracle_ignores_universal_guarantees() {
        let q = Query::new(1, [Expr::universal_bodyless(crate::VarId(0))]).unwrap();
        let mut strict = QueryOracle::new(q.clone());
        let mut relaxed = QueryOracle::relaxed(q);
        assert_eq!(strict.ask(&Obj::empty(1)), Response::NonAnswer);
        assert_eq!(relaxed.ask(&Obj::empty(1)), Response::Answer);
    }

    #[test]
    fn counting_oracle_tracks_questions_and_tuples() {
        let mut o = CountingOracle::new(QueryOracle::new(target()));
        o.ask(&Obj::from_bits("11"));
        o.ask(&Obj::from_bits("10 01 11"));
        let s = o.stats();
        assert_eq!(s.questions, 2);
        assert_eq!(s.tuples, 4);
        assert_eq!(s.max_tuples_per_question, 3);
    }

    #[test]
    fn transcript_records_in_order() {
        let mut o = TranscriptOracle::new(QueryOracle::new(target()));
        o.ask(&Obj::from_bits("11"));
        o.ask(&Obj::from_bits("01"));
        let t = o.into_transcript();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].1, Response::Answer);
        assert_eq!(t[1].1, Response::NonAnswer);
    }

    #[test]
    fn replay_serves_cache_then_falls_back() {
        // Correction: pretend the user mislabeled 11 and fixed it.
        let corrected = vec![(Obj::from_bits("11"), Response::NonAnswer)];
        let mut o = ReplayOracle::new(QueryOracle::new(target()), corrected);
        assert_eq!(
            o.ask(&Obj::from_bits("11")),
            Response::NonAnswer,
            "served from transcript"
        );
        assert_eq!(
            o.ask(&Obj::from_bits("01")),
            Response::NonAnswer,
            "fresh question"
        );
        assert_eq!(o.replayed(), 1);
        assert_eq!(o.fresh(), 1);
        // The fresh answer is now cached.
        o.ask(&Obj::from_bits("01"));
        assert_eq!(o.replayed(), 2);
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn limit_oracle_panics_past_budget() {
        let mut o = LimitOracle::new(QueryOracle::new(target()), 1);
        o.ask(&Obj::from_bits("11"));
        o.ask(&Obj::from_bits("11"));
    }

    #[test]
    fn oracle_answers_identical_pre_and_post_compilation() {
        // Regression: compiling the target (CompiledOracle / QueryOracle)
        // must not change a single answer relative to the naive
        // tuple-at-a-time reference — strict and relaxed, every
        // enumerated 2-variable query, every object.
        use crate::query::eval::reference;
        for q in crate::query::generate::enumerate_role_preserving(2, true) {
            let mut strict = CompiledOracle::new(q.clone());
            let mut relaxed = CompiledOracle::relaxed(q.clone());
            let mut via_query_oracle = QueryOracle::new(q.clone());
            for obj in crate::query::generate::all_objects(2) {
                let want = Response::from_bool(reference::accepts(&q, &obj));
                assert_eq!(strict.ask(&obj), want, "strict {q} on {obj}");
                assert_eq!(via_query_oracle.ask(&obj), want, "wrapper {q} on {obj}");
                let want_relaxed =
                    Response::from_bool(reference::accepts_without_universal_guarantees(&q, &obj));
                assert_eq!(relaxed.ask(&obj), want_relaxed, "relaxed {q} on {obj}");
            }
        }
    }

    #[test]
    fn compiled_oracle_exposes_target_and_plan() {
        let o = CompiledOracle::new(target());
        assert_eq!(o.target(), &target());
        assert!(o.plan().check_count() >= 1);
    }

    #[test]
    fn fn_oracle_wraps_closures() {
        let mut o = FnOracle(|q: &Obj| Response::from_bool(q.len() > 1));
        assert_eq!(o.ask(&Obj::from_bits("11 01")), Response::Answer);
        assert_eq!(o.ask(&Obj::from_bits("11")), Response::NonAnswer);
    }
}
