//! Query-class membership: qhorn-1 (§2.1.3) and role-preserving qhorn
//! (§2.1.4).
//!
//! * **qhorn-1**: no variable repetition — different expressions' bodies
//!   are equal or disjoint, heads are distinct, and no variable is both a
//!   head and a body variable. Headless conjunctions participate with their
//!   variable set in the body-disjointness rule.
//! * **role-preserving qhorn**: variables may repeat, but across universal
//!   Horn expressions head variables only repeat as heads and body
//!   variables only as body variables (the universal-head and
//!   universal-body variable sets are disjoint). Existential expressions
//!   are conjunctions without roles.
//!
//! qhorn-1 ⊂ role-preserving ⊂ qhorn; the classifier returns the most
//! specific class.

use super::{Expr, Query};
use crate::var::{VarId, VarSet};
use std::fmt;

/// The most specific class a query belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum QueryClass {
    /// Satisfies the qhorn-1 syntactic restrictions (§2.1.3).
    Qhorn1,
    /// Role-preserving but not qhorn-1 (§2.1.4).
    RolePreserving,
    /// General qhorn: some variable plays both head and body roles across
    /// universal Horn expressions (e.g. the alias queries of Thm 2.1).
    GeneralQhorn,
}

impl fmt::Display for QueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryClass::Qhorn1 => f.write_str("qhorn-1"),
            QueryClass::RolePreserving => f.write_str("role-preserving qhorn"),
            QueryClass::GeneralQhorn => f.write_str("qhorn"),
        }
    }
}

/// Why a query fails a class's syntactic restrictions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ClassError {
    /// qhorn-1 restriction 1: two bodies overlap without being equal.
    OverlappingBodies {
        /// First body (or conjunction variable set).
        a: VarSet,
        /// Second body (or conjunction variable set).
        b: VarSet,
    },
    /// qhorn-1 restriction 2: the same head appears in two expressions.
    RepeatedHead {
        /// The repeated head variable.
        head: VarId,
    },
    /// qhorn-1 restriction 3 / role-preservation: a variable is both a
    /// head and a body variable.
    HeadUsedAsBody {
        /// The offending variable.
        var: VarId,
    },
}

impl fmt::Display for ClassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassError::OverlappingBodies { a, b } => {
                write!(f, "bodies {a} and {b} overlap without being equal")
            }
            ClassError::RepeatedHead { head } => {
                write!(
                    f,
                    "head variable {head} appears in more than one expression"
                )
            }
            ClassError::HeadUsedAsBody { var } => {
                write!(
                    f,
                    "variable {var} is used both as a head and as a body variable"
                )
            }
        }
    }
}

impl std::error::Error for ClassError {}

/// Validates the qhorn-1 restrictions (§2.1.3). `Ok(())` iff the query is
/// in qhorn-1.
pub fn validate_qhorn1(q: &Query) -> Result<(), ClassError> {
    // Bodies: Horn bodies plus headless conjunction variable sets.
    let mut bodies: Vec<VarSet> = Vec::new();
    let mut heads: Vec<VarId> = Vec::new();
    for e in q.exprs() {
        match e {
            Expr::UniversalHorn { body, head } | Expr::ExistentialHorn { body, head } => {
                bodies.push(body.clone());
                heads.push(*head);
            }
            Expr::ExistentialConj { vars } => bodies.push(vars.clone()),
        }
    }
    // Restriction 1: Bi ∩ Bj = ∅ ∨ Bi = Bj.
    for (i, a) in bodies.iter().enumerate() {
        for b in bodies.iter().skip(i + 1) {
            if !a.is_disjoint(b) && a != b {
                return Err(ClassError::OverlappingBodies {
                    a: a.clone(),
                    b: b.clone(),
                });
            }
        }
    }
    // Restriction 2: hi ≠ hj.
    let mut seen = VarSet::new();
    for &h in &heads {
        if !seen.insert(h) {
            return Err(ClassError::RepeatedHead { head: h });
        }
    }
    // Restriction 3: B ∩ H = ∅.
    for b in &bodies {
        if let Some(v) = b.iter().find(|v| seen.contains(*v)) {
            return Err(ClassError::HeadUsedAsBody { var: v });
        }
    }
    Ok(())
}

/// Validates the role-preserving restriction (§2.1.4): universal head
/// variables and universal body variables are disjoint sets.
pub fn validate_role_preserving(q: &Query) -> Result<(), ClassError> {
    let heads = q.universal_heads();
    let body_vars = q.universal_body_vars();
    if let Some(v) = heads.intersection(&body_vars).first() {
        return Err(ClassError::HeadUsedAsBody { var: v });
    }
    Ok(())
}

/// `true` iff the query satisfies the qhorn-1 restrictions.
#[must_use]
pub fn is_qhorn1(q: &Query) -> bool {
    validate_qhorn1(q).is_ok()
}

/// `true` iff the query is role-preserving.
#[must_use]
pub fn is_role_preserving(q: &Query) -> bool {
    validate_role_preserving(q).is_ok()
}

/// Classifies a query into the most specific class.
#[must_use]
pub fn classify(q: &Query) -> QueryClass {
    if is_qhorn1(q) {
        QueryClass::Qhorn1
    } else if is_role_preserving(q) {
        QueryClass::RolePreserving
    } else {
        QueryClass::GeneralQhorn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    #[test]
    fn fig2_query_is_qhorn1() {
        // ∀x1x2→x4 ∃x1x2→x5 ∃x3→x6 (Fig. 2).
        let q = Query::new(
            6,
            [
                Expr::universal(varset![1, 2], v(4)),
                Expr::existential_horn(varset![1, 2], v(5)),
                Expr::existential_horn(varset![3], v(6)),
            ],
        )
        .unwrap();
        assert_eq!(classify(&q), QueryClass::Qhorn1);
    }

    #[test]
    fn fig3_query_is_role_preserving_not_qhorn1() {
        // ∃x3x5x6 ∃x1x2x5 ∃x2x3x4 ∀x1x2→x4 (Fig. 3).
        let q = Query::new(
            6,
            [
                Expr::conj(varset![3, 5, 6]),
                Expr::conj(varset![1, 2, 5]),
                Expr::conj(varset![2, 3, 4]),
                Expr::universal(varset![1, 2], v(4)),
            ],
        )
        .unwrap();
        assert_eq!(classify(&q), QueryClass::RolePreserving);
        // x5 appears in two conjunctions → overlapping, unequal bodies.
        assert!(matches!(
            validate_qhorn1(&q),
            Err(ClassError::OverlappingBodies { .. })
        ));
    }

    #[test]
    fn section_2_1_4_positive_example() {
        // ∀x1x4→x5 ∀x3x4→x5 ∀x2x4→x6 ∃x1x2x3 ∃x1x2x5x6 is role-preserving.
        let q = Query::new(
            6,
            [
                Expr::universal(varset![1, 4], v(5)),
                Expr::universal(varset![3, 4], v(5)),
                Expr::universal(varset![2, 4], v(6)),
                Expr::conj(varset![1, 2, 3]),
                Expr::conj(varset![1, 2, 5, 6]),
            ],
        )
        .unwrap();
        assert_eq!(classify(&q), QueryClass::RolePreserving);
    }

    #[test]
    fn section_2_1_4_negative_example() {
        // ∀x1x4→x5 ∀x2x3x5→x6 is NOT role-preserving: x5 is head and body.
        let q = Query::new(
            6,
            [
                Expr::universal(varset![1, 4], v(5)),
                Expr::universal(varset![2, 3, 5], v(6)),
            ],
        )
        .unwrap();
        assert_eq!(classify(&q), QueryClass::GeneralQhorn);
        assert_eq!(
            validate_role_preserving(&q),
            Err(ClassError::HeadUsedAsBody { var: v(5) })
        );
    }

    #[test]
    fn alias_queries_are_general_qhorn() {
        // Thm 2.1's alias cycle.
        let q = Query::new(
            2,
            [
                Expr::universal(varset![1], v(2)),
                Expr::universal(varset![2], v(1)),
            ],
        )
        .unwrap();
        assert_eq!(classify(&q), QueryClass::GeneralQhorn);
    }

    #[test]
    fn repeated_head_rejected_in_qhorn1() {
        let q = Query::new(
            4,
            [
                Expr::universal(varset![1], v(3)),
                Expr::universal(varset![2], v(3)),
            ],
        )
        .unwrap();
        assert_eq!(
            validate_qhorn1(&q),
            Err(ClassError::RepeatedHead { head: v(3) })
        );
        // But it is role-preserving (θ = 2 for x3).
        assert_eq!(classify(&q), QueryClass::RolePreserving);
    }

    #[test]
    fn conjunction_overlapping_horn_body_rejected_in_qhorn1() {
        let q = Query::new(
            4,
            [
                Expr::universal(varset![1, 2], v(3)),
                Expr::conj(varset![2, 4]),
            ],
        )
        .unwrap();
        assert!(matches!(
            validate_qhorn1(&q),
            Err(ClassError::OverlappingBodies { .. })
        ));
    }

    #[test]
    fn head_reused_as_conjunction_member_rejected_in_qhorn1_but_role_preserving() {
        // ∀x1→x2 ∃x2x3: x2 is a universal head inside a conjunction —
        // fine for role-preserving (conjunction variables have no role),
        // not for qhorn-1.
        let q = Query::new(
            3,
            [Expr::universal(varset![1], v(2)), Expr::conj(varset![2, 3])],
        )
        .unwrap();
        assert!(validate_qhorn1(&q).is_err());
        assert_eq!(classify(&q), QueryClass::RolePreserving);
    }

    #[test]
    fn empty_and_simple_queries_are_qhorn1() {
        assert_eq!(classify(&Query::empty(3)), QueryClass::Qhorn1);
        let q = Query::new(2, [Expr::universal_bodyless(v(1)), Expr::conj(varset![2])]).unwrap();
        assert_eq!(classify(&q), QueryClass::Qhorn1);
    }

    #[test]
    fn shared_body_two_heads_is_qhorn1() {
        // ∀x1x2→x4 ∃x1x2→x5: equal bodies allowed.
        let q = Query::new(
            5,
            [
                Expr::universal(varset![1, 2], v(4)),
                Expr::existential_horn(varset![1, 2], v(5)),
            ],
        )
        .unwrap();
        assert_eq!(classify(&q), QueryClass::Qhorn1);
    }

    #[test]
    fn class_display() {
        assert_eq!(QueryClass::Qhorn1.to_string(), "qhorn-1");
        assert_eq!(
            QueryClass::RolePreserving.to_string(),
            "role-preserving qhorn"
        );
        assert_eq!(QueryClass::GeneralQhorn.to_string(), "qhorn");
    }
}
