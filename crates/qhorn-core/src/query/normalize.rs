//! Normal forms: dominance (rules R1, R2), head closure (rule R3) and the
//! canonical representation used for equivalence and verification (§2.1.1,
//! §4.1).
//!
//! The paper's equivalence rules:
//!
//! * **R1** — an existential conjunction over `V` dominates any conjunction
//!   over a subset of `V`.
//! * **R2** — a universal Horn expression `∀ B → h` dominates `∀ B′ → h`
//!   whenever `B′ ⊇ B`. The dominated expression's *guarantee clause*
//!   survives as an existential conjunction (`∀x1x2x3→h ∀x1→h` ≡
//!   `∀x1→h ∃x1x2x3h`).
//! * **R3** — `∀ x1 → h  ∃ x1 x3` ≡ `∀ x1 → h  ∃ x1 x3 h`: existential
//!   conjunctions are closed under the universal implications they trigger.
//!
//! [`NormalForm`] applies all three rules and keeps only dominant
//! expressions. By Proposition 4.1, two role-preserving queries are
//! semantically equivalent iff their normal forms coincide; this is also
//! exactly the data the verifier (§4) consumes.

use super::{Expr, Query};
use crate::var::{VarId, VarSet};
use std::collections::BTreeSet;
use std::fmt;

/// The canonical semantic form of a qhorn query.
///
/// * `universals`: the dominant universal Horn expressions, as
///   `(body, head)` pairs with per-head minimal bodies (R2);
/// * `existentials`: the dominant existential conjunctions — user
///   conjunctions *and* every expression's guarantee clause — closed under
///   universal implication (R3) and maximal under inclusion (R1).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct NormalForm {
    n: u16,
    universals: BTreeSet<(VarSet, VarId)>,
    existentials: BTreeSet<VarSet>,
}

impl NormalForm {
    /// Computes the normal form of a query.
    #[must_use]
    pub fn of(q: &Query) -> Self {
        let n = q.arity();

        // All universal (body, head) pairs, deduplicated.
        let all_universals: BTreeSet<(VarSet, VarId)> =
            q.universal_horns().map(|(b, h)| (b.clone(), h)).collect();

        // R2: keep per-head minimal bodies.
        let universals: BTreeSet<(VarSet, VarId)> = all_universals
            .iter()
            .filter(|(b, h)| {
                !all_universals
                    .iter()
                    .any(|(b2, h2)| h2 == h && b2.is_subset(b) && b2 != b)
            })
            .cloned()
            .collect();

        // Candidate conjunctions: every existential expression plus every
        // guarantee clause (including those of dominated universal
        // expressions, which survive normalization as conjunctions).
        let mut candidates: BTreeSet<VarSet> = q.existential_conjunctions().collect();
        for g in q.guarantee_clauses() {
            candidates.insert(g);
        }

        // R3: close each candidate under the universal implications.
        let closed: BTreeSet<VarSet> = candidates
            .into_iter()
            .map(|c| close_under(&c, &universals))
            .collect();

        // R1: keep maximal conjunctions.
        let existentials: BTreeSet<VarSet> = closed
            .iter()
            .filter(|c| !closed.iter().any(|c2| c.is_subset(c2) && *c != c2))
            .cloned()
            .collect();

        NormalForm {
            n,
            universals,
            existentials,
        }
    }

    /// Query arity.
    #[must_use]
    pub fn arity(&self) -> u16 {
        self.n
    }

    /// The dominant universal Horn expressions as `(body, head)` pairs.
    #[must_use]
    pub fn universals(&self) -> &BTreeSet<(VarSet, VarId)> {
        &self.universals
    }

    /// The dominant, closed existential conjunctions (including surviving
    /// guarantee clauses).
    #[must_use]
    pub fn existentials(&self) -> &BTreeSet<VarSet> {
        &self.existentials
    }

    /// The set of universal head variables.
    #[must_use]
    pub fn universal_heads(&self) -> VarSet {
        self.universals.iter().map(|(_, h)| *h).collect()
    }

    /// The dominant bodies of one head variable.
    #[must_use]
    pub fn bodies_of(&self, head: VarId) -> Vec<VarSet> {
        self.universals
            .iter()
            .filter(|(_, h)| *h == head)
            .map(|(b, _)| b.clone())
            .collect()
    }

    /// Causal density θ (Def. 2.6) of the normalized query.
    #[must_use]
    pub fn causal_density(&self) -> usize {
        self.universal_heads()
            .iter()
            .map(|h| self.universals.iter().filter(|(_, hh)| *hh == h).count())
            .max()
            .unwrap_or(0)
    }

    /// Closes a variable set under this normal form's universal
    /// implications (rule R3).
    #[must_use]
    pub fn close(&self, vars: &VarSet) -> VarSet {
        close_under(vars, &self.universals)
    }

    /// `true` iff the guarantee clause of some dominant universal expression
    /// closes to exactly `conj` — i.e. `conj` is "due to a guarantee clause"
    /// (used when building N1 verification questions, Fig. 6).
    #[must_use]
    pub fn is_guarantee_conjunction(&self, conj: &VarSet) -> bool {
        self.universals
            .iter()
            .any(|(b, h)| &self.close(&b.with(*h)) == conj)
    }

    /// Rebuilds a canonical [`Query`] with exactly the dominant expressions.
    /// The result is semantically equivalent to the original query.
    #[must_use]
    pub fn to_query(&self) -> Query {
        let exprs = self
            .universals
            .iter()
            .map(|(b, h)| Expr::universal(b.clone(), *h))
            .chain(self.existentials.iter().map(|c| Expr::conj(c.clone())))
            .collect::<Vec<_>>();
        Query::new(self.n, exprs).expect("normal form is structurally valid")
    }
}

/// Fixpoint closure of `vars` under `{(body, head)}` implications: while a
/// body is contained, add its head.
fn close_under(vars: &VarSet, universals: &BTreeSet<(VarSet, VarId)>) -> VarSet {
    let mut c = vars.clone();
    loop {
        let mut changed = false;
        for (b, h) in universals {
            if !c.contains(*h) && b.is_subset(&c) {
                c.insert(*h);
                changed = true;
            }
        }
        if !changed {
            return c;
        }
    }
}

impl fmt::Display for NormalForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_query())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::generate::all_objects;
    use crate::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    #[test]
    fn rule_r1_subset_conjunctions_dominated() {
        // ∃x1x2x3 ∃x1x2 ∃x2x3 ≡ ∃x1x2x3 (§2.1.1 R1).
        let q = Query::new(
            3,
            [
                Expr::conj(varset![1, 2, 3]),
                Expr::conj(varset![1, 2]),
                Expr::conj(varset![2, 3]),
            ],
        )
        .unwrap();
        let nf = q.normal_form();
        assert_eq!(nf.existentials().len(), 1);
        assert!(nf.existentials().contains(&varset![1, 2, 3]));
    }

    #[test]
    fn rule_r2_superset_bodies_dominated_but_guarantee_survives() {
        // ∀x1x2x3→h ∀x1x2→h ∀x1→h ≡ ∀x1→h ∃x1x2x3h (§2.1.1 R2, h = x4).
        let q = Query::new(
            4,
            [
                Expr::universal(varset![1, 2, 3], v(4)),
                Expr::universal(varset![1, 2], v(4)),
                Expr::universal(varset![1], v(4)),
            ],
        )
        .unwrap();
        let nf = q.normal_form();
        assert_eq!(nf.universals().len(), 1);
        assert!(nf.universals().contains(&(varset![1], v(4))));
        // The dominated expressions' guarantee ∃x1x2x3x4 survives and
        // dominates ∃x1x2x4 and ∃x1x4.
        assert_eq!(nf.existentials().len(), 1);
        assert!(nf.existentials().contains(&varset![1, 2, 3, 4]));
    }

    #[test]
    fn rule_r3_conjunctions_closed_under_implication() {
        // ∀x1 → h ∃x1x3 ≡ ∀x1 → h ∃x1x3h (§2.1.1 R3, h = x2).
        let q = Query::new(
            3,
            [Expr::universal(varset![1], v(2)), Expr::conj(varset![1, 3])],
        )
        .unwrap();
        let nf = q.normal_form();
        assert!(nf.existentials().contains(&varset![1, 2, 3]));
        // Guarantee of ∀x1→x2 is ∃x1x2, dominated by ∃x1x2x3.
        assert_eq!(nf.existentials().len(), 1);
    }

    #[test]
    fn closure_is_fixpoint_through_chains() {
        // x1 → x2, x2 → x3: closing {x1} adds both heads.
        let q = Query::new(
            3,
            [
                Expr::universal(varset![1], v(2)),
                Expr::universal(varset![2], v(3)),
            ],
        )
        .unwrap();
        let nf = q.normal_form();
        assert_eq!(nf.close(&varset![1]), varset![1, 2, 3]);
        assert_eq!(nf.close(&varset![3]), varset![3]);
    }

    #[test]
    fn paper_example_normalization_matches_section_3_2_2() {
        // Query (2): the normalized dominant conjunctions are
        // ∃x1x4x5 ∃x1x2x3x6 ∃x2x3x4x5 ∃x1x2x5x6 ∃x2x3x5x6.
        let q = crate::query::tests::paper_example();
        let nf = q.normal_form();
        let expected: BTreeSet<VarSet> = [
            varset![1, 4, 5],
            varset![1, 2, 3, 6],
            varset![2, 3, 4, 5],
            varset![1, 2, 5, 6],
            varset![2, 3, 5, 6],
        ]
        .into_iter()
        .collect();
        assert_eq!(nf.existentials(), &expected);
        assert_eq!(nf.universals().len(), 3);
        assert_eq!(nf.causal_density(), 2);
    }

    #[test]
    fn guarantee_conjunction_detection() {
        let q = crate::query::tests::paper_example();
        let nf = q.normal_form();
        // ∃x1x4x5 is (the closure of) the guarantee of ∀x1x4→x5.
        assert!(nf.is_guarantee_conjunction(&varset![1, 4, 5]));
        // ∃x1x2x3x6 is a user conjunction, not a guarantee closure.
        assert!(!nf.is_guarantee_conjunction(&varset![1, 2, 3, 6]));
    }

    #[test]
    fn to_query_is_semantically_equivalent_exhaustive() {
        let queries = [
            crate::query::tests::paper_example(),
            Query::new(
                3,
                [
                    Expr::universal(varset![1], v(3)),
                    Expr::conj(varset![2]),
                    Expr::existential_horn(varset![2], v(1)),
                ],
            )
            .unwrap(),
        ];
        for q in queries {
            let canon = q.normal_form().to_query();
            if q.arity() <= 3 {
                for obj in all_objects(q.arity()) {
                    assert_eq!(q.accepts(&obj), canon.accepts(&obj), "differ on {obj}");
                }
            }
        }
    }

    #[test]
    fn bodyless_universal_dominates_all_bodies_of_same_head() {
        let q = Query::new(
            3,
            [
                Expr::universal_bodyless(v(3)),
                Expr::universal(varset![1], v(3)),
            ],
        )
        .unwrap();
        let nf = q.normal_form();
        assert_eq!(nf.universals().len(), 1);
        assert!(nf.universals().contains(&(VarSet::new(), v(3))));
        assert_eq!(nf.bodies_of(v(3)), vec![VarSet::new()]);
    }

    #[test]
    fn empty_query_normal_form() {
        let nf = Query::empty(3).normal_form();
        assert!(nf.universals().is_empty());
        assert!(nf.existentials().is_empty());
        assert_eq!(nf.causal_density(), 0);
        assert_eq!(nf.to_query(), Query::empty(3));
    }
}
