//! Semantic equivalence of queries.
//!
//! Two queries are equivalent iff they label every object identically. For
//! role-preserving qhorn queries, Proposition 4.1 reduces this to equality
//! of normal forms ([`crate::NormalForm`]); [`equivalent`] uses that. For
//! small arities [`equivalent_brute_force`] decides equivalence by
//! enumerating all `2^(2^n)` objects, and is used in tests to validate the
//! normal-form route.

use super::generate::all_objects;
use super::Query;

/// Semantic equivalence via normal forms (Prop. 4.1).
///
/// Sound and complete for qhorn queries (conjunctions of quantified Horn
/// expressions with guarantee clauses) of the classes the paper studies;
/// validated against [`equivalent_brute_force`] in the test suite.
#[must_use]
pub fn equivalent(a: &Query, b: &Query) -> bool {
    a.arity() == b.arity() && a.normal_form() == b.normal_form()
}

/// Decides equivalence by evaluating both queries on **every** object over
/// `n` variables (`2^(2^n)` objects — exponential; intended for `n ≤ 4`).
///
/// # Panics
/// Panics if the arities differ or `n > 4` (the enumeration would exceed
/// 4 billion objects).
#[must_use]
pub fn equivalent_brute_force(a: &Query, b: &Query) -> bool {
    assert_eq!(
        a.arity(),
        b.arity(),
        "cannot compare queries of different arity"
    );
    assert!(
        a.arity() <= 4,
        "brute-force equivalence is limited to n ≤ 4"
    );
    all_objects(a.arity()).all(|obj| a.accepts(&obj) == b.accepts(&obj))
}

/// Finds an object on which the two queries disagree, if any (brute force,
/// `n ≤ 4`). Useful in tests for diagnosing learner bugs.
#[must_use]
pub fn find_counterexample(a: &Query, b: &Query) -> Option<crate::Obj> {
    assert_eq!(a.arity(), b.arity());
    assert!(a.arity() <= 4);
    all_objects(a.arity()).find(|obj| a.accepts(obj) != b.accepts(obj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Expr;
    use crate::var::VarId;
    use crate::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    #[test]
    fn syntactic_variants_are_equivalent() {
        // R1/R2/R3 rewrites preserve semantics.
        let a = Query::new(
            3,
            [Expr::universal(varset![1], v(3)), Expr::conj(varset![1, 2])],
        )
        .unwrap();
        let b = Query::new(
            3,
            [
                Expr::universal(varset![1], v(3)),
                Expr::universal(varset![1, 2], v(3)),
                Expr::conj(varset![1, 2, 3]),
                Expr::conj(varset![2]),
            ],
        )
        .unwrap();
        assert!(equivalent(&a, &b));
        assert!(equivalent_brute_force(&a, &b));
        assert!(find_counterexample(&a, &b).is_none());
    }

    #[test]
    fn different_queries_are_distinguished() {
        let a = Query::new(2, [Expr::universal_bodyless(v(1))]).unwrap();
        let b = Query::new(2, [Expr::conj(varset![1])]).unwrap();
        assert!(!equivalent(&a, &b));
        assert!(!equivalent_brute_force(&a, &b));
        let cex = find_counterexample(&a, &b).unwrap();
        assert_ne!(a.accepts(&cex), b.accepts(&cex));
    }

    #[test]
    fn normal_form_equivalence_matches_brute_force_exhaustively_n2() {
        // Prop. 4.1 validated: over a broad syntactic universe on two
        // variables, normal-form equality coincides with brute force.
        let qs = crate::query::generate::enumerate_syntactic_role_preserving(2);
        for (i, a) in qs.iter().enumerate() {
            for b in qs.iter().skip(i) {
                assert_eq!(
                    equivalent(a, b),
                    equivalent_brute_force(a, b),
                    "normal-form equivalence disagrees with brute force for\n  a = {a}\n  b = {b}"
                );
            }
        }
    }
}
