//! Semantic equivalence of queries.
//!
//! Two queries are equivalent iff they label every object identically. For
//! role-preserving qhorn queries, Proposition 4.1 reduces this to equality
//! of normal forms ([`crate::NormalForm`]); [`equivalent`] uses that. For
//! small arities [`equivalent_brute_force`] decides equivalence by
//! enumerating all `2^(2^n)` objects, and is used in tests to validate the
//! normal-form route. The enumeration runs on the kernel's
//! [`SubsetEvaluator`]: each candidate object is a subset *mask* of the
//! tuple universe and never materialized, which is what makes `n = 5`
//! (2³² candidates) feasible at all.

use crate::kernel::SubsetEvaluator;

use super::Query;

/// Semantic equivalence via normal forms (Prop. 4.1).
///
/// Sound and complete for qhorn queries (conjunctions of quantified Horn
/// expressions with guarantee clauses) of the classes the paper studies;
/// validated against [`equivalent_brute_force`] in the test suite.
#[must_use]
pub fn equivalent(a: &Query, b: &Query) -> bool {
    a.arity() == b.arity() && a.normal_form() == b.normal_form()
}

/// Decides equivalence by evaluating both queries on **every** object over
/// `n` variables (`2^(2^n)` objects — exponential; intended for `n ≤ 5`).
///
/// # Panics
/// Panics if the arities differ or `n > 5` (the enumeration would exceed
/// 2^64 objects).
#[must_use]
pub fn equivalent_brute_force(a: &Query, b: &Query) -> bool {
    let (ea, eb, total) = subset_evaluators(a, b);
    (0..total).all(|mask| ea.accepts_subset(mask) == eb.accepts_subset(mask))
}

/// Finds an object on which the two queries disagree, if any (brute force,
/// `n ≤ 5`). Useful in tests for diagnosing learner bugs.
///
/// # Panics
/// Panics if the arities differ or `n > 5`.
#[must_use]
pub fn find_counterexample(a: &Query, b: &Query) -> Option<crate::Obj> {
    let (ea, eb, total) = subset_evaluators(a, b);
    (0..total)
        .find(|&mask| ea.accepts_subset(mask) != eb.accepts_subset(mask))
        .map(|mask| ea.object_of(mask))
}

fn subset_evaluators(a: &Query, b: &Query) -> (SubsetEvaluator, SubsetEvaluator, u64) {
    assert_eq!(
        a.arity(),
        b.arity(),
        "cannot compare queries of different arity"
    );
    assert!(
        a.arity() <= 5,
        "brute-force equivalence is limited to n ≤ 5"
    );
    let ea = SubsetEvaluator::new(a);
    let eb = SubsetEvaluator::new(b);
    let total = ea.subset_count().expect("2^(2^5) fits in u64");
    (ea, eb, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Expr;
    use crate::var::VarId;
    use crate::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    #[test]
    fn syntactic_variants_are_equivalent() {
        // R1/R2/R3 rewrites preserve semantics.
        let a = Query::new(
            3,
            [Expr::universal(varset![1], v(3)), Expr::conj(varset![1, 2])],
        )
        .unwrap();
        let b = Query::new(
            3,
            [
                Expr::universal(varset![1], v(3)),
                Expr::universal(varset![1, 2], v(3)),
                Expr::conj(varset![1, 2, 3]),
                Expr::conj(varset![2]),
            ],
        )
        .unwrap();
        assert!(equivalent(&a, &b));
        assert!(equivalent_brute_force(&a, &b));
        assert!(find_counterexample(&a, &b).is_none());
    }

    #[test]
    fn different_queries_are_distinguished() {
        let a = Query::new(2, [Expr::universal_bodyless(v(1))]).unwrap();
        let b = Query::new(2, [Expr::conj(varset![1])]).unwrap();
        assert!(!equivalent(&a, &b));
        assert!(!equivalent_brute_force(&a, &b));
        let cex = find_counterexample(&a, &b).unwrap();
        assert_ne!(a.accepts(&cex), b.accepts(&cex));
    }

    #[test]
    fn normal_form_equivalence_matches_brute_force_exhaustively_n2() {
        // Prop. 4.1 validated: over a broad syntactic universe on two
        // variables, normal-form equality coincides with brute force.
        let qs = crate::query::generate::enumerate_syntactic_role_preserving(2);
        for (i, a) in qs.iter().enumerate() {
            for b in qs.iter().skip(i) {
                assert_eq!(
                    equivalent(a, b),
                    equivalent_brute_force(a, b),
                    "normal-form equivalence disagrees with brute force for\n  a = {a}\n  b = {b}"
                );
            }
        }
    }

    #[test]
    fn brute_force_agrees_with_object_enumeration_n3() {
        // The subset-mask route must decide exactly what materialized
        // object enumeration decides.
        let qs = [
            Query::new(3, [Expr::universal(varset![1], v(3))]).unwrap(),
            Query::new(3, [Expr::conj(varset![1, 3])]).unwrap(),
            Query::new(
                3,
                [Expr::universal(varset![1], v(3)), Expr::conj(varset![1])],
            )
            .unwrap(),
            Query::empty(3),
        ];
        for a in &qs {
            for b in &qs {
                let by_objects = crate::query::generate::all_objects(3)
                    .all(|obj| a.accepts(&obj) == b.accepts(&obj));
                assert_eq!(equivalent_brute_force(a, b), by_objects, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn n5_counterexample_search_is_supported() {
        // n = 5 was out of reach for the materializing implementation;
        // the kernel's subset masks handle it. Differing queries surface
        // a counterexample quickly (the scan short-circuits).
        let a = Query::new(5, [Expr::universal_bodyless(v(5))]).unwrap();
        let b = Query::new(5, [Expr::conj(varset![5])]).unwrap();
        let cex = find_counterexample(&a, &b).expect("∀x5 ≠ ∃x5");
        assert_ne!(a.accepts(&cex), b.accepts(&cex));
        assert!(!equivalent_brute_force(&a, &b));
    }

    #[test]
    #[should_panic(expected = "n ≤ 5")]
    fn n6_is_rejected() {
        let a = Query::empty(6);
        let _ = equivalent_brute_force(&a, &a);
    }
}
