//! Exhaustive enumeration of tuples, objects and small query classes.
//!
//! Supports the counting arguments of §2 (`2^n` tuples, `2^(2^n)` objects,
//! Bell-number lower bound on |qhorn-1|) and the exhaustive two-variable
//! verification tables of §4.3 (Figs. 7 and 8).

use super::{Expr, Query};
use crate::object::Obj;
use crate::tuple::BoolTuple;
use crate::var::{VarId, VarSet};
use std::collections::BTreeMap;

/// All `2^n` Boolean tuples over `n` variables, in increasing order of the
/// underlying bitmask.
///
/// # Panics
/// Panics if `n > 20` (guard against runaway allocation).
#[must_use]
pub fn all_tuples(n: u16) -> Vec<BoolTuple> {
    assert!(n <= 20, "all_tuples is limited to n ≤ 20");
    (0u32..(1 << n))
        .map(|mask| {
            let trues: VarSet = (0..n).filter(|i| mask & (1 << i) != 0).map(VarId).collect();
            BoolTuple::from_true_set(n, trues)
        })
        .collect()
}

/// Iterates all `2^(2^n)` objects over `n` variables (including the empty
/// object).
///
/// # Panics
/// Panics if `n > 4`.
pub fn all_objects(n: u16) -> impl Iterator<Item = Obj> {
    assert!(n <= 4, "all_objects is limited to n ≤ 4 (2^(2^n) objects)");
    let tuples = all_tuples(n);
    let count: u64 = 1 << tuples.len();
    (0..count).map(move |mask| {
        Obj::new(
            n,
            tuples
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, t)| t.clone()),
        )
    })
}

/// All non-empty subsets of `vars`, as `VarSet`s.
#[must_use]
pub fn non_empty_subsets(vars: &VarSet) -> Vec<VarSet> {
    let vs = vars.to_vec();
    assert!(vs.len() <= 20);
    (1u32..(1 << vs.len()))
        .map(|mask| {
            vs.iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << *i) != 0)
                .map(|(_, v)| *v)
                .collect()
        })
        .collect()
}

/// All subsets of `vars` including the empty set.
#[must_use]
pub fn all_subsets(vars: &VarSet) -> Vec<VarSet> {
    let mut out = vec![VarSet::new()];
    out.extend(non_empty_subsets(vars));
    out
}

/// Enumerates a syntactic universe of **role-preserving** queries over `n`
/// variables and deduplicates them by normal form. Returns one canonical
/// representative per semantic class.
///
/// The universe: every subset of
/// `{∀B→h : h ∈ V, B ⊆ V−{h}} ∪ {∃C : ∅ ≠ C ⊆ V}` that passes the
/// role-preserving validation. With `complete_only`, only queries
/// mentioning every variable are kept (the learning model's assumption).
///
/// # Panics
/// Panics if `n > 3` (the universe has `2^(n·2^(n−1) + 2^n − 1)` subsets).
#[must_use]
pub fn enumerate_role_preserving(n: u16, complete_only: bool) -> Vec<Query> {
    let universe = enumerate_syntactic_role_preserving(n);
    let mut by_nf: BTreeMap<String, Query> = BTreeMap::new();
    for q in universe {
        if complete_only && !q.is_complete() {
            continue;
        }
        let key = format!("{:?}", q.normal_form());
        by_nf.entry(key).or_insert(q);
    }
    by_nf.into_values().collect()
}

/// The raw syntactic universe behind [`enumerate_role_preserving`]
/// (role-preserving-valid queries, duplicates by semantics included).
///
/// # Panics
/// Panics if `n > 3`.
#[must_use]
pub fn enumerate_syntactic_role_preserving(n: u16) -> Vec<Query> {
    assert!(n <= 3, "syntactic enumeration is limited to n ≤ 3");
    let vars = VarSet::full(n);
    // Candidate expressions.
    let mut candidates: Vec<Expr> = Vec::new();
    for h in vars.iter() {
        for body in all_subsets(&vars.without(h)) {
            candidates.push(Expr::universal(body, h));
        }
    }
    for c in non_empty_subsets(&vars) {
        candidates.push(Expr::conj(c));
    }
    assert!(candidates.len() <= 24, "universe too large");
    let mut out = Vec::new();
    for mask in 0u64..(1 << candidates.len()) {
        let exprs: Vec<Expr> = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << *i) != 0)
            .map(|(_, e)| e.clone())
            .collect();
        let q = Query::new(n, exprs).expect("candidates are valid");
        if super::classes::classify(&q) != super::classes::QueryClass::GeneralQhorn {
            out.push(q);
        }
    }
    out
}

/// Enumerates distinct (by normal form) **qhorn-1** queries over `n`
/// variables via the paper's partition construction (§2.1.3): every
/// partition of the variables into parts, each part configured as a body
/// with quantified heads, a headless conjunction, or (singletons) a single
/// quantified variable.
///
/// Used to validate the Bell-number lower bound `|qhorn-1| ≥ B_n`.
///
/// # Panics
/// Panics if `n > 6`.
#[must_use]
pub fn enumerate_qhorn1(n: u16) -> Vec<Query> {
    assert!(
        (1..=6).contains(&n),
        "qhorn-1 enumeration is limited to 1 ≤ n ≤ 6"
    );
    let mut by_nf: BTreeMap<String, Query> = BTreeMap::new();
    for partition in set_partitions(n) {
        let per_part_configs: Vec<Vec<Vec<Expr>>> = partition.iter().map(part_configs).collect();
        // Cartesian product of per-part configurations.
        let mut stack: Vec<Vec<Expr>> = vec![Vec::new()];
        for configs in &per_part_configs {
            let mut next = Vec::with_capacity(stack.len() * configs.len());
            for prefix in &stack {
                for cfg in configs {
                    let mut e = prefix.clone();
                    e.extend(cfg.iter().cloned());
                    next.push(e);
                }
            }
            stack = next;
        }
        for exprs in stack {
            let q = Query::new(n, exprs).expect("generated expressions are valid");
            debug_assert!(
                super::classes::is_qhorn1(&q),
                "generator must emit qhorn-1: {q}"
            );
            let key = format!("{:?}", q.normal_form());
            by_nf.entry(key).or_insert(q);
        }
    }
    by_nf.into_values().collect()
}

/// All configurations of one partition part as qhorn-1 expressions.
fn part_configs(part: &VarSet) -> Vec<Vec<Expr>> {
    let vs = part.to_vec();
    let mut out = Vec::new();
    if vs.len() == 1 {
        // ∀x or ∃x.
        out.push(vec![Expr::universal_bodyless(vs[0])]);
        out.push(vec![Expr::conj(part.clone())]);
        return out;
    }
    // Headless conjunction ∃part.
    out.push(vec![Expr::conj(part.clone())]);
    // Choose a non-empty proper subset as the body; the rest are heads,
    // each independently quantified ∀ or ∃.
    for body in non_empty_subsets(part) {
        if body.len() == part.len() {
            continue;
        }
        let heads = part.difference(&body).to_vec();
        for qmask in 0u32..(1 << heads.len()) {
            let exprs: Vec<Expr> = heads
                .iter()
                .enumerate()
                .map(|(i, &h)| {
                    if qmask & (1 << i) != 0 {
                        Expr::universal(body.clone(), h)
                    } else {
                        Expr::existential_horn(body.clone(), h)
                    }
                })
                .collect();
            out.push(exprs);
        }
    }
    out
}

/// All partitions of `{x1..xn}` into non-empty parts (Bell(n) of them),
/// via restricted-growth strings.
#[must_use]
pub fn set_partitions(n: u16) -> Vec<Vec<VarSet>> {
    assert!((1..=10).contains(&n));
    let mut out = Vec::new();
    // rgs[i] = part index of variable i; rgs[0] = 0; rgs[i] ≤ max(rgs[..i]) + 1.
    let mut rgs = vec![0usize; n as usize];
    loop {
        let parts_count = rgs.iter().copied().max().unwrap() + 1;
        let mut parts = vec![VarSet::new(); parts_count];
        for (i, &p) in rgs.iter().enumerate() {
            parts[p].insert(VarId(i as u16));
        }
        out.push(parts);
        // Next restricted-growth string.
        let mut i = n as usize - 1;
        loop {
            if i == 0 {
                return out;
            }
            let max_prefix = rgs[..i].iter().copied().max().unwrap();
            if rgs[i] <= max_prefix {
                rgs[i] += 1;
                for r in rgs.iter_mut().skip(i + 1) {
                    *r = 0;
                }
                break;
            }
            i -= 1;
        }
    }
}

/// Bell numbers `B_0..=B_n` (number of set partitions).
#[must_use]
pub fn bell_numbers(n: usize) -> Vec<u128> {
    // Bell triangle.
    let mut row = vec![1u128];
    let mut bells = vec![1u128];
    for _ in 0..n {
        let mut next = Vec::with_capacity(row.len() + 1);
        next.push(*row.last().unwrap());
        for &x in &row {
            let last = *next.last().unwrap();
            next.push(last + x);
        }
        bells.push(next[0]);
        row = next;
    }
    bells.truncate(n + 1);
    bells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_and_object_counts_match_section_2() {
        // "With n propositions, we can construct 2^n Boolean tuples" and
        // "there are 2^(2^n) possible sets of Boolean tuples".
        assert_eq!(all_tuples(3).len(), 8);
        assert_eq!(all_objects(3).count(), 256);
        assert_eq!(all_objects(2).count(), 16);
    }

    #[test]
    fn all_tuples_distinct() {
        let ts = all_tuples(4);
        let set: std::collections::BTreeSet<_> = ts.iter().cloned().collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn subsets_counts() {
        let s = VarSet::full(4);
        assert_eq!(non_empty_subsets(&s).len(), 15);
        assert_eq!(all_subsets(&s).len(), 16);
    }

    #[test]
    fn set_partitions_counts_are_bell_numbers() {
        let bells = bell_numbers(6);
        assert_eq!(bells, vec![1, 1, 2, 5, 15, 52, 203]);
        for n in 1..=6u16 {
            assert_eq!(
                set_partitions(n).len() as u128,
                bells[n as usize],
                "n = {n}"
            );
        }
    }

    #[test]
    fn qhorn1_count_at_least_bell_number() {
        // §2.1.3: a unique query exists for every partition, so
        // |qhorn-1 / ≡| ≥ B_n.
        let bells = bell_numbers(4);
        for n in 1..=4u16 {
            let count = enumerate_qhorn1(n).len() as u128;
            assert!(
                count >= bells[n as usize],
                "n = {n}: {count} distinct qhorn-1 queries < Bell {}",
                bells[n as usize]
            );
        }
    }

    #[test]
    fn qhorn1_enumeration_small_cases() {
        // n = 1: ∀x1 vs ∃x1 — two semantically distinct queries.
        assert_eq!(enumerate_qhorn1(1).len(), 2);
        // n = 2: singletons (2×2 combos) + {x1x2} part configs:
        // ∃x1x2, ∀B→h and ∃B→h for B/h splits. ∃x1→x2 ≡ ∃x2→x1 ≡ ∃x1x2.
        // Distinct: ∀x1∀x2, ∀x1∃x2, ∃x1∀x2, ∃x1∃x2, ∃x1x2, ∀x1→x2, ∀x2→x1 = 7.
        assert_eq!(enumerate_qhorn1(2).len(), 7);
    }

    #[test]
    fn role_preserving_enumeration_n2() {
        let all = enumerate_role_preserving(2, true);
        // Every returned query is complete, role-preserving and pairwise
        // non-equivalent.
        for q in &all {
            assert!(q.is_complete());
            assert_ne!(
                super::super::classes::classify(q),
                super::super::classes::QueryClass::GeneralQhorn
            );
        }
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                assert!(!crate::query::equiv::equivalent(a, b), "{a} ≡ {b}");
            }
        }
        // Fig. 7 tabulates the role-preserving queries on two variables;
        // the exhaustive list (excluding the empty query, which mentions no
        // variable) is printed by fig7_two_var_sets. Sanity: at least the 7
        // qhorn-1 classes exist.
        assert!(all.len() >= 7, "found only {}", all.len());
    }
}
