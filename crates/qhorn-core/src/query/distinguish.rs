//! Distinguishing tuples (Defs. 3.4 and 3.5).
//!
//! * The **existential distinguishing tuple** of a conjunction `∃ C` sets
//!   exactly the variables of `C` true (Def. 3.5). On the Boolean lattice,
//!   questions built from its upset are answers and questions built only
//!   from the rest of the lattice are non-answers — it is the inflection
//!   point the lattice learner (§3.2.2) searches for.
//! * The **universal distinguishing tuple** of `∀ B → h` sets the body `B`
//!   true and the head `h` false; the remaining head variables are true
//!   (neutralized) and all remaining variables false (Def. 3.4 / §4.1.2).
//!
//! Proposition 4.1: two role-preserving queries are semantically equivalent
//! iff they induce identical sets of existential and universal
//! distinguishing tuples.

use super::normalize::NormalForm;
use crate::tuple::BoolTuple;
use crate::var::{VarId, VarSet};
use std::collections::BTreeSet;

/// The distinguishing tuple of the existential conjunction `conj` in a
/// query of arity `n`: the tuple whose true-set is exactly `conj`.
///
/// `conj` must already be closed under the query's universal implications
/// (rule R3) or the tuple would violate a universal Horn expression; the
/// sets in [`NormalForm::existentials`] are closed.
#[must_use]
pub fn existential_tuple(n: u16, conj: &VarSet) -> BoolTuple {
    BoolTuple::from_true_set(n, conj.clone())
}

/// The distinguishing tuple of the universal Horn expression
/// `∀ body → head`: body true, head false, other universal heads
/// (`all_heads − {head}`) true, everything else false.
#[must_use]
pub fn universal_tuple(n: u16, body: &VarSet, head: VarId, all_heads: &VarSet) -> BoolTuple {
    let trues = body.union(&all_heads.without(head));
    BoolTuple::from_true_set(n, trues)
}

impl NormalForm {
    /// The set of existential distinguishing tuples: one per dominant,
    /// closed conjunction (guarantee clauses included).
    #[must_use]
    pub fn existential_distinguishing_tuples(&self) -> BTreeSet<BoolTuple> {
        self.existentials()
            .iter()
            .map(|c| existential_tuple(self.arity(), c))
            .collect()
    }

    /// The set of universal distinguishing tuples: one per dominant
    /// universal Horn expression.
    #[must_use]
    pub fn universal_distinguishing_tuples(&self) -> BTreeSet<BoolTuple> {
        let heads = self.universal_heads();
        self.universals()
            .iter()
            .map(|(b, h)| universal_tuple(self.arity(), b, *h, &heads))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Expr, Query};
    use crate::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    #[test]
    fn universal_tuples_match_section_4_2() {
        // §4.2 [A2]: ∀x1x4→x5 ⇒ 100101, ∀x3x4→x5 ⇒ 001101, ∀x1x2→x6 ⇒ 110010.
        let q = crate::query::tests::paper_example();
        let nf = q.normal_form();
        let tuples: Vec<String> = nf
            .universal_distinguishing_tuples()
            .iter()
            .map(BoolTuple::to_bits)
            .collect();
        for expected in ["100101", "001101", "110010"] {
            assert!(
                tuples.contains(&expected.to_string()),
                "missing {expected}: {tuples:?}"
            );
        }
        assert_eq!(tuples.len(), 3);
    }

    #[test]
    fn existential_tuples_match_section_4_2() {
        // §4.2 [A1] after dominance pruning:
        // 111001 011110 110011 011011 100110.
        let q = crate::query::tests::paper_example();
        let nf = q.normal_form();
        let tuples: BTreeSet<String> = nf
            .existential_distinguishing_tuples()
            .iter()
            .map(BoolTuple::to_bits)
            .collect();
        let expected: BTreeSet<String> = ["111001", "011110", "110011", "011011", "100110"]
            .into_iter()
            .map(String::from)
            .collect();
        assert_eq!(tuples, expected);
    }

    #[test]
    fn fig5_distinguishing_tuples_for_x5() {
        // Fig. 5 marks 100101 and 001101 as the distinguishing tuples of
        // x5's two universal Horn expressions.
        let q = Query::new(
            6,
            [
                Expr::universal(varset![1, 4], v(5)),
                Expr::universal(varset![3, 4], v(5)),
                Expr::universal(varset![1, 2], v(6)),
            ],
        )
        .unwrap();
        let heads = q.normal_form().universal_heads();
        assert_eq!(
            universal_tuple(6, &varset![1, 4], v(5), &heads).to_bits(),
            "100101"
        );
        assert_eq!(
            universal_tuple(6, &varset![3, 4], v(5), &heads).to_bits(),
            "001101"
        );
    }

    #[test]
    fn bodyless_universal_tuple() {
        // ∀h alone: tuple is all-false except other heads.
        let q = Query::new(2, [Expr::universal_bodyless(v(1))]).unwrap();
        let nf = q.normal_form();
        let ts = nf.universal_distinguishing_tuples();
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.first().unwrap().to_bits(), "00");
    }

    #[test]
    fn distinguishing_tuples_align_with_kernel_checks() {
        // The kernel's compiled checks and the distinguishing tuples are
        // two views of the same normal form: the object containing every
        // existential distinguishing tuple passes all witness checks, and
        // each universal distinguishing tuple (plus the all-true tuple,
        // which neutralizes guarantee clauses) fires exactly its own
        // violation check.
        let q = crate::query::tests::paper_example();
        let nf = q.normal_form();
        let plan = crate::kernel::CompiledQuery::from_normal_form(&nf);
        let n = q.arity();
        let a1 = crate::Obj::new(n, nf.existential_distinguishing_tuples());
        assert!(plan.matches(&a1), "A1 object is an answer");
        let top = BoolTuple::all_true(n);
        for dt in nf.universal_distinguishing_tuples() {
            let obj = crate::Obj::new(n, [top.clone(), dt.clone()]);
            assert!(!plan.matches(&obj), "tuple {dt} must violate its ∀");
        }
    }

    #[test]
    fn proposition_4_1_equal_tuples_iff_equal_normal_forms() {
        // Two syntactically different but equivalent queries share tuples.
        let q1 = Query::new(
            3,
            [Expr::universal(varset![1], v(3)), Expr::conj(varset![1, 2])],
        )
        .unwrap();
        let q2 = Query::new(
            3,
            [
                Expr::universal(varset![1], v(3)),
                Expr::universal(varset![1, 2], v(3)), // dominated (R2)
                Expr::conj(varset![1, 2, 3]),         // closure of ∃x1x2 (R3)
            ],
        )
        .unwrap();
        let (n1, n2) = (q1.normal_form(), q2.normal_form());
        assert_eq!(
            n1.existential_distinguishing_tuples(),
            n2.existential_distinguishing_tuples()
        );
        assert_eq!(
            n1.universal_distinguishing_tuples(),
            n2.universal_distinguishing_tuples()
        );
        assert_eq!(n1, n2);
    }
}
