//! The qhorn query model: AST, semantics, classes, normalization,
//! equivalence and enumeration.

pub mod classes;
pub mod distinguish;
pub mod equiv;
pub(crate) mod eval;
pub mod expr;
pub mod generate;
pub mod normalize;

pub use classes::{ClassError, QueryClass};
pub use eval::FailureReason;
pub use expr::{Expr, ExprError};
pub use normalize::NormalForm;

use crate::var::{VarId, VarSet};
use std::fmt;

/// A qhorn query: a conjunction of quantified (Horn) expressions over the
/// tuples of an object, each with an implicit guarantee clause (§2.1).
///
/// `Query` stores the *syntactic* form the user (or learner) produced;
/// semantic questions — evaluation, dominance, equivalence — are answered
/// by [`Query::eval`] and [`NormalForm`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Query {
    n: u16,
    exprs: Vec<Expr>,
}

#[cfg(feature = "json")]
mod json {
    use super::{Expr, Query};
    use crate::var::{VarId, VarSet};
    use qhorn_json::{FromJson, Json, JsonError, ToJson};

    impl ToJson for Expr {
        fn to_json(&self) -> Json {
            // Externally tagged, mirroring a derived enum representation.
            match self {
                Expr::UniversalHorn { body, head } => Json::object([(
                    "UniversalHorn",
                    Json::object([("body", body.to_json()), ("head", head.to_json())]),
                )]),
                Expr::ExistentialHorn { body, head } => Json::object([(
                    "ExistentialHorn",
                    Json::object([("body", body.to_json()), ("head", head.to_json())]),
                )]),
                Expr::ExistentialConj { vars } => {
                    Json::object([("ExistentialConj", Json::object([("vars", vars.to_json())]))])
                }
            }
        }
    }

    impl FromJson for Expr {
        fn from_json(j: &Json) -> Result<Self, JsonError> {
            let pairs = j
                .as_obj()
                .ok_or_else(|| JsonError::msg("expected expression object"))?;
            let [(tag, inner)] = pairs else {
                return Err(JsonError::msg("expected a single-variant expression tag"));
            };
            match tag.as_str() {
                "UniversalHorn" => Ok(Expr::UniversalHorn {
                    body: VarSet::from_json(inner.field("body")?)?,
                    head: VarId::from_json(inner.field("head")?)?,
                }),
                "ExistentialHorn" => Ok(Expr::ExistentialHorn {
                    body: VarSet::from_json(inner.field("body")?)?,
                    head: VarId::from_json(inner.field("head")?)?,
                }),
                "ExistentialConj" => Ok(Expr::ExistentialConj {
                    vars: VarSet::from_json(inner.field("vars")?)?,
                }),
                other => Err(JsonError::msg(format!(
                    "unknown expression variant `{other}`"
                ))),
            }
        }
    }

    impl ToJson for Query {
        fn to_json(&self) -> Json {
            Json::object([("n", self.n.to_json()), ("exprs", self.exprs.to_json())])
        }
    }

    impl FromJson for Query {
        fn from_json(j: &Json) -> Result<Self, JsonError> {
            let n = u16::from_json(j.field("n")?)?;
            let exprs = Vec::<Expr>::from_json(j.field("exprs")?)?;
            Query::new(n, exprs).map_err(|e| JsonError::msg(e.to_string()))
        }
    }
}

impl Query {
    /// Builds a query over `n` variables; validates each expression.
    pub fn new<I: IntoIterator<Item = Expr>>(n: u16, exprs: I) -> Result<Self, ExprError> {
        let exprs: Vec<Expr> = exprs.into_iter().collect();
        for e in &exprs {
            e.validate(n)?;
        }
        Ok(Query { n, exprs })
    }

    /// The query over `n` variables with no expressions — every object
    /// (including the empty one) is an answer.
    #[must_use]
    pub fn empty(n: u16) -> Self {
        Query {
            n,
            exprs: Vec::new(),
        }
    }

    /// Number of Boolean variables (propositions).
    #[must_use]
    pub fn arity(&self) -> u16 {
        self.n
    }

    /// The expressions, in insertion order.
    #[must_use]
    pub fn exprs(&self) -> &[Expr] {
        &self.exprs
    }

    /// Query size `k` (Def. 2.5): the number of expressions, not counting
    /// guarantee clauses (which are implicit here).
    #[must_use]
    pub fn size(&self) -> usize {
        self.exprs.len()
    }

    /// Adds an expression.
    pub fn push(&mut self, e: Expr) -> Result<(), ExprError> {
        e.validate(self.n)?;
        self.exprs.push(e);
        Ok(())
    }

    /// Iterates the universal Horn expressions as `(body, head)` pairs.
    pub fn universal_horns(&self) -> impl Iterator<Item = (&VarSet, VarId)> + '_ {
        self.exprs.iter().filter_map(|e| match e {
            Expr::UniversalHorn { body, head } => Some((body, *head)),
            _ => None,
        })
    }

    /// Iterates the existential expressions as conjunction variable sets
    /// (existential Horn expressions contribute `body ∪ {head}`, which is
    /// semantically equivalent given the guarantee clause).
    pub fn existential_conjunctions(&self) -> impl Iterator<Item = VarSet> + '_ {
        self.exprs.iter().filter_map(|e| match e {
            Expr::ExistentialHorn { body, head } => Some(body.with(*head)),
            Expr::ExistentialConj { vars } => Some(vars.clone()),
            Expr::UniversalHorn { .. } => None,
        })
    }

    /// The guarantee clauses of all expressions (universal and existential),
    /// each as an existential conjunction variable set.
    pub fn guarantee_clauses(&self) -> impl Iterator<Item = VarSet> + '_ {
        self.exprs.iter().map(Expr::guarantee_clause)
    }

    /// The set of universal head variables.
    #[must_use]
    pub fn universal_heads(&self) -> VarSet {
        self.universal_horns().map(|(_, h)| h).collect()
    }

    /// The set of variables appearing in some universal body.
    #[must_use]
    pub fn universal_body_vars(&self) -> VarSet {
        self.universal_horns().flat_map(|(b, _)| b.iter()).collect()
    }

    /// All variables mentioned by some expression.
    #[must_use]
    pub fn mentioned_vars(&self) -> VarSet {
        self.exprs
            .iter()
            .flat_map(|e| e.participating_vars().to_vec())
            .collect()
    }

    /// `true` iff every variable `x1..xn` appears in some expression.
    ///
    /// The learning algorithms of §3 assume complete targets (see
    /// DESIGN.md §1, assumption 3).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.mentioned_vars() == VarSet::full(self.n)
    }

    /// The causal density θ (Def. 2.6): the maximum, over head variables
    /// `h`, of the number of distinct **non-dominated** universal Horn
    /// expressions with head `h`.
    #[must_use]
    pub fn causal_density(&self) -> usize {
        let nf = self.normal_form();
        let mut best = 0usize;
        let heads: Vec<VarId> = nf.universals().iter().map(|(_, h)| *h).collect();
        for h in heads {
            let c = nf.universals().iter().filter(|(_, hh)| *hh == h).count();
            best = best.max(c);
        }
        best
    }

    /// Computes the query's normal form (dominant expressions, closed
    /// conjunctions — §2.1.1, §4.1). Cached nowhere; call sites that need it
    /// repeatedly should hold on to the result.
    #[must_use]
    pub fn normal_form(&self) -> NormalForm {
        NormalForm::of(self)
    }
}

impl fmt::Display for Query {
    /// Renders in the paper's shorthand: expressions separated by spaces,
    /// guarantee clauses implicit (e.g. `∀x1x2 → x3 ∀x4 ∃x5`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.exprs.is_empty() {
            return write!(f, "⊤");
        }
        for (i, e) in self.exprs.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    /// The paper's running example from §3.2.1/§4.2:
    /// `∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6`.
    pub(crate) fn paper_example() -> Query {
        Query::new(
            6,
            [
                Expr::universal(varset![1, 4], v(5)),
                Expr::universal(varset![3, 4], v(5)),
                Expr::universal(varset![1, 2], v(6)),
                Expr::conj(varset![1, 2, 3]),
                Expr::conj(varset![2, 3, 4]),
                Expr::conj(varset![1, 2, 5]),
                Expr::conj(varset![2, 3, 5, 6]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn size_and_arity() {
        let q = paper_example();
        assert_eq!(q.arity(), 6);
        assert_eq!(q.size(), 7);
    }

    #[test]
    fn head_and_body_sets() {
        let q = paper_example();
        assert_eq!(q.universal_heads(), varset![5, 6]);
        assert_eq!(q.universal_body_vars(), varset![1, 2, 3, 4]);
    }

    #[test]
    fn completeness() {
        let q = paper_example();
        assert!(q.is_complete());
        let partial = Query::new(3, [Expr::conj(varset![1])]).unwrap();
        assert!(!partial.is_complete());
    }

    #[test]
    fn causal_density_of_paper_example_is_two() {
        // x5 has two non-dominated bodies {x1,x4} and {x3,x4}; x6 has one.
        assert_eq!(paper_example().causal_density(), 2);
    }

    #[test]
    fn causal_density_respects_dominance() {
        // ∀x1 → x3 dominates ∀x1x2 → x3 (Rule R2) so θ = 1.
        let q = Query::new(
            3,
            [
                Expr::universal(varset![1], v(3)),
                Expr::universal(varset![1, 2], v(3)),
            ],
        )
        .unwrap();
        assert_eq!(q.causal_density(), 1);
    }

    #[test]
    fn display_shorthand() {
        let q = Query::new(
            5,
            [
                Expr::universal(varset![1, 2], v(3)),
                Expr::universal_bodyless(v(4)),
                Expr::conj(varset![5]),
            ],
        )
        .unwrap();
        assert_eq!(q.to_string(), "∀x1x2 → x3  ∀x4  ∃x5");
        assert_eq!(Query::empty(3).to_string(), "⊤");
    }

    #[test]
    fn push_validates() {
        let mut q = Query::empty(2);
        assert!(q.push(Expr::conj(varset![3])).is_err());
        assert!(q.push(Expr::conj(varset![2])).is_ok());
        assert_eq!(q.size(), 1);
    }

    #[test]
    fn existential_horn_contributes_closed_conjunction() {
        let q = Query::new(3, [Expr::existential_horn(varset![1, 2], v(3))]).unwrap();
        let conjs: Vec<VarSet> = q.existential_conjunctions().collect();
        assert_eq!(conjs, vec![varset![1, 2, 3]]);
    }
}
