//! Query expressions — quantified Horn expressions and conjunctions (§2.1).
//!
//! A qhorn query is a conjunction of quantified Horn expressions. Each
//! expression quantifies over the tuples `t ∈ S` of an object:
//!
//! * `∀ B → h` — **universal Horn expression**: every tuple with all body
//!   variables `B` true must have the head `h` true. `B = ∅` gives the
//!   degenerate *bodyless* form `∀ h`.
//! * `∃ B → h` — **existential Horn expression** (qhorn-1 form): some tuple
//!   satisfies `∧B → h`. Together with its mandatory guarantee clause it is
//!   semantically equivalent to the conjunction `∃ (B ∧ h)`.
//! * `∃ V` — **existential conjunction**: some tuple has all of `V` true.
//!   This is the degenerate *headless* Horn expression, and the only
//!   existential form in role-preserving qhorn.
//!
//! Every expression carries an implicit **guarantee clause** (§2.1 item 2):
//! the conjunction of all its variables must hold existentially. Guarantee
//! clauses are not stored; evaluation ([`crate::query::Query::eval`]) and
//! normalization add them.

use crate::var::{VarId, VarSet};
use std::fmt;

/// One expression of a qhorn query.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Expr {
    /// `∀ body → head` (bodyless when `body` is empty).
    UniversalHorn {
        /// Conjunction of body variables (may be empty).
        body: VarSet,
        /// The implied head variable.
        head: VarId,
    },
    /// `∃ body → head` — qhorn-1's existential Horn expression.
    ExistentialHorn {
        /// Conjunction of body variables (may be empty: `∃ ∅ → h` ≡ `∃ h`).
        body: VarSet,
        /// The implied head variable.
        head: VarId,
    },
    /// `∃ vars` — existential conjunction over a non-empty variable set.
    ExistentialConj {
        /// The conjunction's variables.
        vars: VarSet,
    },
}

impl Expr {
    /// Convenience constructor for `∀ body → head`.
    #[must_use]
    pub fn universal(body: VarSet, head: VarId) -> Self {
        Expr::UniversalHorn { body, head }
    }

    /// Convenience constructor for the bodyless `∀ head`.
    #[must_use]
    pub fn universal_bodyless(head: VarId) -> Self {
        Expr::UniversalHorn {
            body: VarSet::new(),
            head,
        }
    }

    /// Convenience constructor for `∃ body → head`.
    #[must_use]
    pub fn existential_horn(body: VarSet, head: VarId) -> Self {
        Expr::ExistentialHorn { body, head }
    }

    /// Convenience constructor for `∃ vars`.
    #[must_use]
    pub fn conj(vars: VarSet) -> Self {
        Expr::ExistentialConj { vars }
    }

    /// `true` for `UniversalHorn`.
    #[must_use]
    pub fn is_universal(&self) -> bool {
        matches!(self, Expr::UniversalHorn { .. })
    }

    /// `true` for either existential form.
    #[must_use]
    pub fn is_existential(&self) -> bool {
        !self.is_universal()
    }

    /// All variables participating in the expression (body ∪ head, or the
    /// conjunction's variables). This is also the expression's guarantee
    /// clause.
    #[must_use]
    pub fn participating_vars(&self) -> VarSet {
        match self {
            Expr::UniversalHorn { body, head } | Expr::ExistentialHorn { body, head } => {
                body.with(*head)
            }
            Expr::ExistentialConj { vars } => vars.clone(),
        }
    }

    /// The guarantee clause of this expression (§2.1 item 2): the
    /// existential conjunction of all its participating variables.
    #[must_use]
    pub fn guarantee_clause(&self) -> VarSet {
        self.participating_vars()
    }

    /// The head variable, if the expression has one.
    #[must_use]
    pub fn head(&self) -> Option<VarId> {
        match self {
            Expr::UniversalHorn { head, .. } | Expr::ExistentialHorn { head, .. } => Some(*head),
            Expr::ExistentialConj { .. } => None,
        }
    }

    /// The body variables (empty set for conjunctions — a headless
    /// expression is "all body", but we report it via
    /// [`Expr::participating_vars`] instead to avoid role confusion).
    #[must_use]
    pub fn body(&self) -> Option<&VarSet> {
        match self {
            Expr::UniversalHorn { body, .. } | Expr::ExistentialHorn { body, .. } => Some(body),
            Expr::ExistentialConj { .. } => None,
        }
    }

    /// Validates the expression against arity `n`:
    /// * every variable in range;
    /// * the head not contained in its own body (degenerate, always true);
    /// * conjunctions non-empty.
    pub fn validate(&self, n: u16) -> Result<(), ExprError> {
        let vars = self.participating_vars();
        if let Some(max) = vars.iter().last() {
            if max.index() >= n as usize {
                return Err(ExprError::VarOutOfRange { var: max, arity: n });
            }
        }
        match self {
            Expr::UniversalHorn { body, head } | Expr::ExistentialHorn { body, head } => {
                if body.contains(*head) {
                    return Err(ExprError::HeadInBody { head: *head });
                }
            }
            Expr::ExistentialConj { vars } => {
                if vars.is_empty() {
                    return Err(ExprError::EmptyConjunction);
                }
            }
        }
        Ok(())
    }
}

/// Structural errors for a single expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExprError {
    /// A variable index is `>= n`.
    VarOutOfRange {
        /// The offending variable.
        var: VarId,
        /// The query arity.
        arity: u16,
    },
    /// The head appears in its own body (`∀ x1 x2 → x1` is trivially true).
    HeadInBody {
        /// The offending head.
        head: VarId,
    },
    /// `∃ ∅` — an empty existential conjunction.
    EmptyConjunction,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::VarOutOfRange { var, arity } => {
                write!(f, "variable {var} out of range for query arity {arity}")
            }
            ExprError::HeadInBody { head } => {
                write!(
                    f,
                    "head variable {head} appears in its own body (trivial expression)"
                )
            }
            ExprError::EmptyConjunction => f.write_str("existential conjunction over no variables"),
        }
    }
}

impl std::error::Error for ExprError {}

fn write_vars(f: &mut fmt::Formatter<'_>, vars: &VarSet) -> fmt::Result {
    for v in vars.iter() {
        write!(f, "{v}")?;
    }
    Ok(())
}

impl fmt::Display for Expr {
    /// Renders in the paper's shorthand, e.g. `∀x1x2 → x3`, `∃x4`, `∀x5`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::UniversalHorn { body, head } => {
                if body.is_empty() {
                    write!(f, "∀{head}")
                } else {
                    write!(f, "∀")?;
                    write_vars(f, body)?;
                    write!(f, " → {head}")
                }
            }
            Expr::ExistentialHorn { body, head } => {
                if body.is_empty() {
                    write!(f, "∃{head}")
                } else {
                    write!(f, "∃")?;
                    write_vars(f, body)?;
                    write!(f, " → {head}")
                }
            }
            Expr::ExistentialConj { vars } => {
                write!(f, "∃")?;
                write_vars(f, vars)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::varset;

    #[test]
    fn display_matches_paper_shorthand() {
        let e = Expr::universal(varset![1, 2], VarId::from_one_based(3));
        assert_eq!(e.to_string(), "∀x1x2 → x3");
        assert_eq!(
            Expr::universal_bodyless(VarId::from_one_based(4)).to_string(),
            "∀x4"
        );
        assert_eq!(Expr::conj(varset![5]).to_string(), "∃x5");
        assert_eq!(
            Expr::existential_horn(varset![1, 2], VarId::from_one_based(5)).to_string(),
            "∃x1x2 → x5"
        );
    }

    #[test]
    fn participating_vars_and_guarantee() {
        let e = Expr::universal(varset![1, 2], VarId::from_one_based(3));
        assert_eq!(e.participating_vars(), varset![1, 2, 3]);
        assert_eq!(e.guarantee_clause(), varset![1, 2, 3]);
        let c = Expr::conj(varset![2, 4]);
        assert_eq!(c.participating_vars(), varset![2, 4]);
    }

    #[test]
    fn validate_catches_range_and_head_in_body() {
        let e = Expr::universal(varset![1, 2], VarId::from_one_based(9));
        assert!(matches!(
            e.validate(4),
            Err(ExprError::VarOutOfRange { .. })
        ));
        assert!(e.validate(9).is_ok());
        let bad = Expr::universal(varset![1, 3], VarId::from_one_based(3));
        assert!(matches!(bad.validate(4), Err(ExprError::HeadInBody { .. })));
        let empty = Expr::conj(VarSet::new());
        assert!(matches!(
            empty.validate(4),
            Err(ExprError::EmptyConjunction)
        ));
    }

    #[test]
    fn head_body_accessors() {
        let e = Expr::universal(varset![1], VarId::from_one_based(2));
        assert_eq!(e.head(), Some(VarId::from_one_based(2)));
        assert_eq!(e.body(), Some(&varset![1]));
        let c = Expr::conj(varset![1, 2]);
        assert_eq!(c.head(), None);
        assert_eq!(c.body(), None);
        assert!(c.is_existential());
        assert!(e.is_universal());
    }

    #[test]
    fn error_messages_are_informative() {
        let msg = ExprError::HeadInBody { head: VarId(0) }.to_string();
        assert!(msg.contains("x1"));
        let msg = ExprError::VarOutOfRange {
            var: VarId(5),
            arity: 3,
        }
        .to_string();
        assert!(msg.contains("x6") && msg.contains('3'));
    }
}
