//! Query evaluation: mapping objects to answers / non-answers (Def. 2.4).
//!
//! Semantics of a query `Q` on an object `S` (a set of Boolean tuples):
//!
//! * every universal Horn expression `∀ B → h` must hold for **all** tuples
//!   (`B ⊆ t` implies `h ∈ t`), **and** its guarantee clause
//!   `∃ t ⊇ B ∪ {h}` must hold;
//! * every existential expression must have a witness tuple containing all
//!   of its participating variables (this subsumes existential Horn
//!   expressions, which are implied by their guarantee clauses, §2.1);
//! * `S` is an answer iff all expressions hold.
//!
//! Consequently the empty object is an answer only for the empty query:
//! guarantee clauses demand at least one positive instance per expression
//! (the "no empty chocolate boxes" rule, §2.1 item 2).
//!
//! All evaluation is delegated to [`crate::kernel`], the single
//! word-parallel evaluator shared by every layer of the system. The
//! tuple-at-a-time naive implementation survives only as a
//! `#[cfg(test)]` differential reference ([`reference`]).

use super::Query;
use crate::kernel;
use crate::object::{Obj, Response};
use crate::tuple::BoolTuple;
use crate::var::{VarId, VarSet};

impl Query {
    /// Evaluates the query on an object.
    ///
    /// # Panics
    /// Panics if the object's arity differs from the query's.
    #[must_use]
    pub fn eval(&self, obj: &Obj) -> Response {
        Response::from_bool(self.accepts(obj))
    }

    /// `true` iff `obj` is an answer to the query.
    ///
    /// # Panics
    /// Panics if the object's arity differs from the query's.
    #[must_use]
    pub fn accepts(&self, obj: &Obj) -> bool {
        kernel::accepts(self, obj)
    }

    /// Evaluates the query *without* guarantee clauses on universal
    /// expressions (the footnote-1 relaxation in §3.2.2, needed when a
    /// learner asks about objects that contain no positive instance for a
    /// universal expression, e.g. the empty object).
    ///
    /// Existential expressions still require witnesses (they *are* their
    /// guarantee clauses).
    ///
    /// # Panics
    /// Panics if the object's arity differs from the query's.
    #[must_use]
    pub fn accepts_without_universal_guarantees(&self, obj: &Obj) -> bool {
        kernel::accepts_without_universal_guarantees(self, obj)
    }
}

/// Why an object fails a query — the first failing expression, for
/// explain-style output (DataPlay-like interfaces show users *why* an
/// example is a non-answer). This is the owning form; the kernel reports
/// failures as borrowed [`kernel::Failure`] values and call sites that
/// only display the reason should prefer [`Query::explain_failure_ref`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FailureReason {
    /// A universal Horn expression is violated by a specific tuple.
    UniversalViolated {
        /// The expression's body.
        body: VarSet,
        /// The expression's head.
        head: VarId,
        /// The violating tuple (body true, head false).
        tuple: BoolTuple,
    },
    /// An existential conjunction (or guarantee clause) has no witness.
    MissingWitness {
        /// The conjunction with no witness tuple.
        vars: VarSet,
    },
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureReason::UniversalViolated { body, head, tuple } => {
                if body.is_empty() {
                    write!(f, "tuple {tuple} violates ∀{head}")
                } else {
                    write!(f, "tuple {tuple} violates ∀{body} → {head}")
                }
            }
            FailureReason::MissingWitness { vars } => {
                write!(f, "no tuple witnesses ∃{vars}")
            }
        }
    }
}

impl Query {
    /// Explains why `obj` is a non-answer, or `None` if it is an answer.
    /// Reports the first failing expression in query order (universal
    /// violations before missing guarantees within one expression).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    #[must_use]
    pub fn explain_failure(&self, obj: &Obj) -> Option<FailureReason> {
        kernel::explain(self, obj).map(|f| f.to_reason())
    }

    /// Borrowing variant of [`Query::explain_failure`]: the failing body
    /// and tuple are referenced, not cloned, so explain stays cheap on
    /// hot paths.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    #[must_use]
    pub fn explain_failure_ref<'q, 'o>(&'q self, obj: &'o Obj) -> Option<kernel::Failure<'q, 'o>> {
        kernel::explain(self, obj)
    }
}

/// The original tuple-at-a-time evaluator, kept **only** as a
/// differential reference for the kernel's tests. Never used on a
/// production path.
#[cfg(test)]
pub(crate) mod reference {
    use super::*;
    use crate::query::Expr;

    /// Naive Def. 2.4 evaluation (guarantee clauses enforced).
    pub(crate) fn accepts(q: &Query, obj: &Obj) -> bool {
        assert_eq!(obj.arity(), q.arity());
        q.exprs().iter().all(|e| expr_holds(e, obj))
    }

    /// Naive footnote-1 relaxed evaluation.
    pub(crate) fn accepts_without_universal_guarantees(q: &Query, obj: &Obj) -> bool {
        assert_eq!(obj.arity(), q.arity());
        q.exprs().iter().all(|e| match e {
            Expr::UniversalHorn { body, head } => universal_holds(body, *head, obj),
            _ => expr_holds(e, obj),
        })
    }

    /// `∀ t ∈ S: (∧body) → head` — vacuously true on the empty object.
    fn universal_holds(body: &VarSet, head: VarId, obj: &Obj) -> bool {
        obj.tuples()
            .iter()
            .all(|t| !t.satisfies_all(body) || t.get(head))
    }

    fn expr_holds(e: &Expr, obj: &Obj) -> bool {
        match e {
            Expr::UniversalHorn { body, head } => {
                universal_holds(body, *head, obj) && obj.some_tuple_satisfies(&body.with(*head))
            }
            Expr::ExistentialHorn { body, head } => obj.some_tuple_satisfies(&body.with(*head)),
            Expr::ExistentialConj { vars } => obj.some_tuple_satisfies(vars),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Expr;
    use crate::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    /// The intro's chocolate query (1):
    /// `∀c (isDark) ∧ ∃c (hasFilling ∧ origin=Madagascar)` over
    /// x1=isDark, x2=hasFilling, x3=origin=Madagascar.
    fn chocolate_query() -> Query {
        Query::new(
            3,
            [Expr::universal_bodyless(v(1)), Expr::conj(varset![2, 3])],
        )
        .unwrap()
    }

    #[test]
    fn fig1_boxes() {
        // Fig. 1: Global Ground = {111, 101, 110}? — from the figure the
        // Boolean rows for box S1 are {111, 000, 110} and S2 = {100, 110}.
        let q = chocolate_query();
        let s1 = Obj::from_bits("111 000 110");
        let s2 = Obj::from_bits("100 110");
        // S1 has a non-dark chocolate (000) — violates ∀ isDark.
        assert_eq!(q.eval(&s1), Response::NonAnswer);
        // S2 is all dark but has no filled Madagascar chocolate.
        assert_eq!(q.eval(&s2), Response::NonAnswer);
        let good = Obj::from_bits("111 110");
        assert_eq!(q.eval(&good), Response::Answer);
    }

    #[test]
    fn universal_horn_with_body() {
        // ∀x1x2 → x3 with guarantee ∃x1x2x3.
        let q = Query::new(3, [Expr::universal(varset![1, 2], v(3))]).unwrap();
        assert!(q.accepts(&Obj::from_bits("111 001 100")));
        // 110 has the body true but head false.
        assert!(!q.accepts(&Obj::from_bits("111 110")));
        // No tuple satisfies the guarantee clause ∃x1x2x3.
        assert!(!q.accepts(&Obj::from_bits("100 010")));
        // Without-guarantee relaxation accepts it.
        assert!(q.accepts_without_universal_guarantees(&Obj::from_bits("100 010")));
    }

    #[test]
    fn empty_object_needs_empty_query() {
        let q = Query::new(2, [Expr::universal_bodyless(v(1)), Expr::conj(varset![2])]).unwrap();
        assert!(
            !q.accepts(&Obj::empty(2)),
            "guarantee clauses reject empty boxes"
        );
        assert!(Query::empty(2).accepts(&Obj::empty(2)));
        // Relaxed semantics: universal part vacuous, but ∃x2 still fails.
        assert!(!q.accepts_without_universal_guarantees(&Obj::empty(2)));
        let uni_only = Query::new(2, [Expr::universal_bodyless(v(1))]).unwrap();
        assert!(uni_only.accepts_without_universal_guarantees(&Obj::empty(2)));
        assert!(!uni_only.accepts(&Obj::empty(2)));
    }

    #[test]
    fn existential_horn_equivalent_to_guarantee_conjunction() {
        let horn = Query::new(3, [Expr::existential_horn(varset![1, 2], v(3))]).unwrap();
        let conj = Query::new(3, [Expr::conj(varset![1, 2, 3])]).unwrap();
        // Exhaustive check over all 2^(2^3) = 256 objects.
        for obj in crate::query::generate::all_objects(3) {
            assert_eq!(horn.accepts(&obj), conj.accepts(&obj), "differ on {obj}");
        }
    }

    #[test]
    fn query_1_from_paper_section_2() {
        // ∀t (x1) ∧ ∃t (x2 ∧ x3): an answer needs all-dark and a
        // Madagascar-filled chocolate.
        let q = chocolate_query();
        assert!(q.accepts(&Obj::from_bits("111")));
        assert!(!q.accepts(&Obj::from_bits("100")));
        assert!(!q.accepts(&Obj::from_bits("111 011")), "011 is not dark");
    }

    #[test]
    fn explain_failure_reports_cause() {
        let q = Query::new(3, [Expr::universal(varset![1, 2], v(3))]).unwrap();
        let why = q.explain_failure(&Obj::from_bits("111 110")).unwrap();
        match &why {
            FailureReason::UniversalViolated { tuple, .. } => assert_eq!(tuple.to_bits(), "110"),
            other => panic!("expected a universal violation, got {other}"),
        }
        assert!(why.to_string().contains("violates"));
        let why = q.explain_failure(&Obj::from_bits("100")).unwrap();
        assert!(matches!(why, FailureReason::MissingWitness { .. }));
        assert!(why.to_string().contains("∃"));
        assert!(q.explain_failure(&Obj::from_bits("111")).is_none());
    }

    #[test]
    fn explain_failure_ref_borrows_without_cloning() {
        let q = Query::new(3, [Expr::universal(varset![1, 2], v(3))]).unwrap();
        let obj = Obj::from_bits("111 110");
        let why = q.explain_failure_ref(&obj).unwrap();
        assert_eq!(why.to_reason(), q.explain_failure(&obj).unwrap());
        assert_eq!(
            why.to_string(),
            q.explain_failure(&obj).unwrap().to_string()
        );
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let _ = chocolate_query().accepts(&Obj::from_bits("1111"));
    }

    #[test]
    fn theorem_2_1_alias_example() {
        // φ = Uni({x1,x3,x5}) ∧ Alias({x2,x4,x6}):
        // ∀x1 ∀x3 ∀x5 ∀x2→x4 ∀x4→x6 ∀x6→x2.
        let q = Query::new(
            6,
            [
                Expr::universal_bodyless(v(1)),
                Expr::universal_bodyless(v(3)),
                Expr::universal_bodyless(v(5)),
                Expr::universal(varset![2], v(4)),
                Expr::universal(varset![4], v(6)),
                Expr::universal(varset![6], v(2)),
            ],
        )
        .unwrap();
        // Exactly the two satisfying questions from the proof of Thm 2.1.
        assert!(q.accepts(&Obj::from_bits("111111")));
        assert!(q.accepts(&Obj::from_bits("111111 101010")));
        // One false uni variable → non-answer.
        assert!(!q.accepts(&Obj::from_bits("111111 011010")));
        // Mixed alias values → non-answer (x6 true forces x2 true).
        assert!(!q.accepts(&Obj::from_bits("111111 101011")));
    }
}
