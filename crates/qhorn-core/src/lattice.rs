//! Boolean-lattice utilities (§3.2, Fig. 4).
//!
//! The role-preserving learning algorithms walk the Boolean lattice on the
//! query's variables: level `l` holds the tuples with exactly `l` false
//! variables; a tuple's children set one more variable to false. Tuples
//! that violate an already-learned universal Horn expression (body true,
//! head false) are removed from the lattice before the existential search
//! (§3.2.2).

use crate::tuple::BoolTuple;
use crate::var::{VarId, VarSet};

/// `true` iff the tuple violates `∀ body → head` (body satisfied, head
/// false).
#[must_use]
pub fn violates(t: &BoolTuple, body: &VarSet, head: VarId) -> bool {
    t.satisfies_all(body) && !t.get(head)
}

/// `true` iff the tuple violates any of the given universal Horn
/// expressions.
#[must_use]
pub fn violates_any<'a, I>(t: &BoolTuple, universals: I) -> bool
where
    I: IntoIterator<Item = &'a (VarSet, VarId)>,
{
    universals.into_iter().any(|(b, h)| violates(t, b, *h))
}

/// The children of `t` that do not violate any of the given universal Horn
/// expressions — the lattice restriction of §3.2.2 ("we remove all tuples
/// that violate a universal Horn expression").
#[must_use]
pub fn non_violating_children(t: &BoolTuple, universals: &[(VarSet, VarId)]) -> Vec<BoolTuple> {
    t.children()
        .into_iter()
        .filter(|c| !violates_any(c, universals))
        .collect()
}

/// All tuples at lattice level `level` (exactly `level` variables false)
/// over `n` variables, `C(n, level)` of them.
///
/// # Panics
/// Panics if `level > n` or `n > 20`.
#[must_use]
pub fn tuples_at_level(n: u16, level: usize) -> Vec<BoolTuple> {
    assert!(level <= n as usize, "level {level} > n {n}");
    assert!(n <= 20);
    let mut out = Vec::new();
    let mut current = VarSet::new();
    choose_rec(n, 0, level, &mut current, &mut out);
    out
}

fn choose_rec(
    n: u16,
    start: u16,
    remaining: usize,
    current: &mut VarSet,
    out: &mut Vec<BoolTuple>,
) {
    if remaining == 0 {
        let falses = current.clone();
        out.push(BoolTuple::from_true_set(
            n,
            VarSet::full(n).difference(&falses),
        ));
        return;
    }
    for i in start..n {
        if ((n - i) as usize) < remaining {
            break;
        }
        current.insert(VarId(i));
        choose_rec(n, i + 1, remaining - 1, current, out);
        current.remove(VarId(i));
    }
}

/// Iterates the Cartesian product of the given variable sets, yielding one
/// choice (one variable per set) at a time. Used for the "search roots" of
/// §3.2.1 (one body variable from each discovered body set to false) and
/// the A3 verification question (§4.2).
///
/// Yields nothing if any set is empty; yields the empty choice once if
/// `sets` is empty.
pub fn choice_product<'a>(sets: &'a [VarSet]) -> ChoiceProduct<'a> {
    ChoiceProduct {
        sets,
        elems: sets.iter().map(VarSet::to_vec).collect(),
        idx: vec![0; sets.len()],
        done: sets.iter().any(VarSet::is_empty),
        first: true,
    }
}

/// Iterator over one-variable-per-set choices; see [`choice_product`].
pub struct ChoiceProduct<'a> {
    sets: &'a [VarSet],
    elems: Vec<Vec<VarId>>,
    idx: Vec<usize>,
    done: bool,
    first: bool,
}

impl Iterator for ChoiceProduct<'_> {
    /// The chosen variables, as a set (choices picking the same variable
    /// from two sets collapse).
    type Item = VarSet;

    fn next(&mut self) -> Option<VarSet> {
        if self.done {
            return None;
        }
        if self.first {
            self.first = false;
            if self.sets.is_empty() {
                self.done = true;
                return Some(VarSet::new());
            }
        } else {
            // Advance the mixed-radix counter.
            let mut i = 0;
            loop {
                if i == self.idx.len() {
                    self.done = true;
                    return None;
                }
                self.idx[i] += 1;
                if self.idx[i] < self.elems[i].len() {
                    break;
                }
                self.idx[i] = 0;
                i += 1;
            }
        }
        Some(
            self.idx
                .iter()
                .zip(&self.elems)
                .map(|(&i, es)| es[i])
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    #[test]
    fn violation_detection() {
        let t = BoolTuple::from_bits("111110");
        assert!(violates(&t, &varset![1, 2], v(6)), "x1x2 true, x6 false");
        assert!(!violates(&t, &varset![1, 2], v(5)));
        assert!(!violates(
            &BoolTuple::from_bits("101110"),
            &varset![1, 2],
            v(6)
        ));
        // Bodyless: ∀h violated iff h false.
        assert!(violates(&t, &VarSet::new(), v(6)));
    }

    #[test]
    fn section_3_2_2_children_filtering() {
        // "we removed 111010 because it violates ∀x1x2→x6" — children of
        // 111011 under the paper-example universals.
        let universals = vec![
            (varset![1, 4], v(5)),
            (varset![3, 4], v(5)),
            (varset![1, 2], v(6)),
        ];
        let t = BoolTuple::from_bits("111011");
        let kids: Vec<String> = non_violating_children(&t, &universals)
            .iter()
            .map(BoolTuple::to_bits)
            .collect();
        let expected = ["011011", "101011", "110011", "111001"];
        assert_eq!(kids.len(), 4);
        for e in expected {
            assert!(kids.contains(&e.to_string()), "missing {e}: {kids:?}");
        }
        assert!(!kids.contains(&"111010".to_string()));
    }

    #[test]
    fn levels_have_binomial_sizes() {
        // Fig. 4: the four-variable lattice.
        assert_eq!(tuples_at_level(4, 0), vec![BoolTuple::all_true(4)]);
        assert_eq!(tuples_at_level(4, 1).len(), 4);
        assert_eq!(tuples_at_level(4, 2).len(), 6);
        assert_eq!(tuples_at_level(4, 4), vec![BoolTuple::all_false(4)]);
        for t in tuples_at_level(4, 2) {
            assert_eq!(t.level(), 2);
        }
    }

    #[test]
    fn choice_product_enumerates_search_roots() {
        // §3.2.1: bodies {x1,x4} and {x3,x4} give roots excluding one
        // variable from each: {x1,x3}, {x1,x4}, {x4,x3}, {x4} (collapsed).
        let sets = [varset![1, 4], varset![3, 4]];
        let choices: Vec<VarSet> = choice_product(&sets).collect();
        assert_eq!(choices.len(), 4);
        assert!(choices.contains(&varset![1, 3]));
        assert!(choices.contains(&varset![1, 4]));
        assert!(choices.contains(&varset![3, 4]));
        assert!(
            choices.contains(&varset![4]),
            "same variable chosen from both sets collapses"
        );
    }

    #[test]
    fn choice_product_edge_cases() {
        assert_eq!(choice_product(&[]).collect::<Vec<_>>(), vec![VarSet::new()]);
        let with_empty = [varset![1], VarSet::new()];
        assert_eq!(choice_product(&with_empty).count(), 0);
        let single = [varset![2, 3]];
        assert_eq!(choice_product(&single).count(), 2);
    }
}
