//! Boolean tuples — true/false assignments to the `n` variables.
//!
//! A [`BoolTuple`] is one row of the Boolean abstraction of an embedded
//! relation (one "chocolate" in the paper's running example, Fig. 1). The
//! paper writes tuples as bitstrings with `x1` leftmost (`100101` means
//! `x1, x4, x6` true); [`BoolTuple::from_bits`] and `Display` follow the
//! same convention.

use crate::var::{VarId, VarSet};
use std::fmt;

/// A true/false assignment to variables `x1..xn`.
///
/// The arity `n` is part of the value: tuples of different arity are never
/// equal and cannot be mixed inside one [`crate::Obj`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BoolTuple {
    n: u16,
    trues: VarSet,
}

#[cfg(feature = "json")]
mod json {
    use super::BoolTuple;
    use crate::var::VarSet;
    use qhorn_json::{FromJson, Json, JsonError, ToJson};

    impl ToJson for BoolTuple {
        fn to_json(&self) -> Json {
            Json::object([("n", self.n.to_json()), ("trues", self.trues.to_json())])
        }
    }

    impl FromJson for BoolTuple {
        fn from_json(j: &Json) -> Result<Self, JsonError> {
            let n = u16::from_json(j.field("n")?)?;
            let trues = VarSet::from_json(j.field("trues")?)?;
            if let Some(max) = trues.iter().last() {
                if max.index() >= n as usize {
                    return Err(JsonError::msg(format!(
                        "variable {max} out of range for arity {n}"
                    )));
                }
            }
            Ok(BoolTuple { n, trues })
        }
    }
}

impl BoolTuple {
    /// The all-true tuple `1^n`.
    #[must_use]
    pub fn all_true(n: u16) -> Self {
        BoolTuple {
            n,
            trues: VarSet::full(n),
        }
    }

    /// The all-false tuple `0^n`.
    #[must_use]
    pub fn all_false(n: u16) -> Self {
        BoolTuple {
            n,
            trues: VarSet::new(),
        }
    }

    /// A tuple over `n` variables whose true-set is exactly `trues`.
    ///
    /// # Panics
    /// Panics if `trues` mentions a variable `>= n`.
    #[must_use]
    pub fn from_true_set(n: u16, trues: VarSet) -> Self {
        if let Some(max) = trues.iter().last() {
            assert!(
                max.index() < n as usize,
                "variable {max} out of range for arity {n}"
            );
        }
        BoolTuple { n, trues }
    }

    /// Parses a bitstring in the paper's convention: leftmost character is
    /// `x1`. Example: `BoolTuple::from_bits("100101")` has `x1, x4, x6` true.
    ///
    /// # Panics
    /// Panics on characters other than `0`/`1`.
    #[must_use]
    pub fn from_bits(bits: &str) -> Self {
        let mut trues = VarSet::new();
        let mut n = 0u16;
        for (i, c) in bits.chars().enumerate() {
            match c {
                '1' => {
                    trues.insert(VarId(i as u16));
                }
                '0' => {}
                other => panic!("invalid bit character {other:?} in {bits:?}"),
            }
            n = (i + 1) as u16;
        }
        BoolTuple { n, trues }
    }

    /// Number of variables.
    #[must_use]
    pub fn arity(&self) -> u16 {
        self.n
    }

    /// The set of variables assigned true.
    #[must_use]
    pub fn true_set(&self) -> &VarSet {
        &self.trues
    }

    /// The set of variables assigned false.
    #[must_use]
    pub fn false_set(&self) -> VarSet {
        VarSet::full(self.n).difference(&self.trues)
    }

    /// Value of one variable.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn get(&self, v: VarId) -> bool {
        assert!(
            v.index() < self.n as usize,
            "{v} out of range for arity {}",
            self.n
        );
        self.trues.contains(v)
    }

    /// Functional update: a copy of the tuple with `v` set to `value`.
    #[must_use]
    pub fn with(&self, v: VarId, value: bool) -> Self {
        assert!(
            v.index() < self.n as usize,
            "{v} out of range for arity {}",
            self.n
        );
        let trues = if value {
            self.trues.with(v)
        } else {
            self.trues.without(v)
        };
        BoolTuple { n: self.n, trues }
    }

    /// Functional update: a copy with every variable in `vs` set to `value`.
    #[must_use]
    pub fn with_all(&self, vs: &VarSet, value: bool) -> Self {
        if let Some(max) = vs.iter().last() {
            assert!(max.index() < self.n as usize, "{max} out of range");
        }
        let trues = if value {
            self.trues.union(vs)
        } else {
            self.trues.difference(vs)
        };
        BoolTuple { n: self.n, trues }
    }

    /// `true` iff all variables of `vs` are true in this tuple.
    #[must_use]
    pub fn satisfies_all(&self, vs: &VarSet) -> bool {
        vs.is_subset(&self.trues)
    }

    /// Number of true variables.
    #[must_use]
    pub fn count_true(&self) -> usize {
        self.trues.len()
    }

    /// Lattice level of the tuple: the number of *false* variables (§3.2,
    /// Fig. 4 — level 0 is the all-true top).
    #[must_use]
    pub fn level(&self) -> usize {
        self.n as usize - self.trues.len()
    }

    /// `true` iff this tuple is in the **upset** of `other` (every variable
    /// true in `other` is true here; `self ⊇ other` on true-sets). A tuple
    /// is in its own upset.
    #[must_use]
    pub fn in_upset_of(&self, other: &BoolTuple) -> bool {
        self.n == other.n && other.trues.is_subset(&self.trues)
    }

    /// `true` iff this tuple is in the **downset** of `other`.
    #[must_use]
    pub fn in_downset_of(&self, other: &BoolTuple) -> bool {
        self.n == other.n && self.trues.is_subset(&other.trues)
    }

    /// `true` iff neither tuple is in the other's upset (incomparable in the
    /// lattice order).
    #[must_use]
    pub fn incomparable(&self, other: &BoolTuple) -> bool {
        !self.in_upset_of(other) && !self.in_downset_of(other)
    }

    /// The children of this tuple in the Boolean lattice: each child sets
    /// exactly one currently-true variable to false (out-degree `n − level`,
    /// Fig. 4).
    #[must_use]
    pub fn children(&self) -> Vec<BoolTuple> {
        self.trues.iter().map(|v| self.with(v, false)).collect()
    }

    /// The parents of this tuple in the Boolean lattice: each parent sets
    /// exactly one currently-false variable to true (in-degree `level`).
    #[must_use]
    pub fn parents(&self) -> Vec<BoolTuple> {
        self.false_set()
            .iter()
            .map(|v| self.with(v, true))
            .collect()
    }

    /// Renders the tuple as the paper's bitstring (x1 leftmost).
    #[must_use]
    pub fn to_bits(&self) -> String {
        (0..self.n)
            .map(|i| {
                if self.trues.contains(VarId(i)) {
                    '1'
                } else {
                    '0'
                }
            })
            .collect()
    }
}

impl fmt::Display for BoolTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_bits())
    }
}

impl fmt::Debug for BoolTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::varset;

    #[test]
    fn bits_round_trip_matches_paper_convention() {
        let t = BoolTuple::from_bits("100101");
        assert_eq!(t.arity(), 6);
        assert_eq!(t.true_set(), &varset![1, 4, 6]);
        assert_eq!(t.to_bits(), "100101");
        assert_eq!(t.to_string(), "100101");
    }

    #[test]
    fn all_true_all_false() {
        assert_eq!(BoolTuple::all_true(4).to_bits(), "1111");
        assert_eq!(BoolTuple::all_false(4).to_bits(), "0000");
        assert_eq!(BoolTuple::all_true(4).level(), 0);
        assert_eq!(BoolTuple::all_false(4).level(), 4);
    }

    #[test]
    fn get_with() {
        let t = BoolTuple::from_bits("0110");
        assert!(!t.get(VarId(0)));
        assert!(t.get(VarId(1)));
        assert_eq!(t.with(VarId(0), true).to_bits(), "1110");
        assert_eq!(t.with(VarId(1), false).to_bits(), "0010");
        assert_eq!(t.to_bits(), "0110", "with() is functional");
    }

    #[test]
    fn with_all_sets_group() {
        let t = BoolTuple::all_true(5);
        let u = t.with_all(&varset![2, 4], false);
        assert_eq!(u.to_bits(), "10101");
        assert_eq!(u.with_all(&varset![2, 4], true), t);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let _ = BoolTuple::all_true(3).get(VarId(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_true_set_range_checked() {
        let _ = BoolTuple::from_true_set(2, varset![3]);
    }

    #[test]
    fn upset_downset_incomparable() {
        let top = BoolTuple::from_bits("1111");
        let t = BoolTuple::from_bits("0011");
        let u = BoolTuple::from_bits("0110");
        assert!(top.in_upset_of(&t));
        assert!(t.in_downset_of(&top));
        assert!(t.in_upset_of(&t), "reflexive");
        assert!(t.incomparable(&u));
        assert!(!t.incomparable(&top));
    }

    #[test]
    fn children_parents_degrees_match_fig4() {
        // Fig. 4: at level l, out-degree n−l and in-degree l.
        let t = BoolTuple::from_bits("0011");
        assert_eq!(t.level(), 2);
        assert_eq!(t.children().len(), 2);
        assert_eq!(t.parents().len(), 2);
        let kids: Vec<String> = t.children().iter().map(|c| c.to_bits()).collect();
        assert!(kids.contains(&"0001".to_string()));
        assert!(kids.contains(&"0010".to_string()));
        let parents: Vec<String> = t.parents().iter().map(|c| c.to_bits()).collect();
        assert!(parents.contains(&"1011".to_string()));
        assert!(parents.contains(&"0111".to_string()));
    }

    #[test]
    fn satisfies_all() {
        let t = BoolTuple::from_bits("1101");
        assert!(t.satisfies_all(&varset![1, 2]));
        assert!(t.satisfies_all(&VarSet::new()));
        assert!(!t.satisfies_all(&varset![1, 3]));
    }

    #[test]
    fn arity_is_part_of_identity() {
        let a = BoolTuple::all_true(3);
        let b = BoolTuple::all_true(4);
        assert_ne!(a, b);
    }
}
