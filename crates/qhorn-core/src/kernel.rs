//! The evaluation kernel: every layer's "does object `S` satisfy query
//! `Q`?" (Def. 2.4) funnels through this module.
//!
//! # Check layout
//!
//! A query compiles into two flat lists of word-level checks:
//!
//! * **violation checks** — one per dominant universal Horn expression
//!   `∀ B → h`, stored as the pair of bitmasks `(body, head)`: a tuple
//!   whose true-set word `t` has `t & body == body` and `t & head == 0`
//!   refutes the query;
//! * **witness checks** — one per dominant closed existential conjunction
//!   (guarantee clauses included), stored as the bitmask `need`: some
//!   tuple must have `t & need == need`. Witness checks run
//!   largest-conjunction-first (most selective).
//!
//! `S` is an answer iff **no** violation check fires and **every** witness
//! check is met. For arities ≤ 64 (every workload this system runs) both
//! checks are single-`u64` AND/compare operations against each tuple's
//! inline true-set word ([`crate::VarSet::as_word`]) — no allocation, no
//! AST walk. The default path is **lane-unrolled**: tuple words are
//! gathered into a fixed stack buffer in chunks of 64 and each pass over
//! the buffer evaluates [`LANES`] (4) check masks at once, branchless
//! within a lane group, with witness satisfaction tracked as a single
//! `u64` bitmask (one bit per witness check). The original one-check-at-
//! a-time evaluator survives as [`CompiledQuery::matches_scalar`] — the
//! differential-test and benchmark baseline. Wider arities fall back to
//! generic [`crate::VarSet`] operations, and bulk execution over large
//! objects can instead sweep a columnar [`TupleMatrix`] (one contiguous
//! cache-line-aligned bitmap buffer, one column per variable) whose
//! AND/AND-NOT passes are unrolled 4 words (256 tuples) per step.
//!
//! Three entry points cover the system's evaluation patterns:
//!
//! * [`CompiledQuery`] — compile once (normalization + static check
//!   ordering), evaluate many objects: oracles, execution engines, PAC
//!   version spaces, adversaries.
//! * [`accepts`] / [`accepts_without_universal_guarantees`] / [`explain`]
//!   — one-shot evaluation of a raw query on one object, skipping
//!   normalization (cheaper than compiling when the query is seen once).
//! * [`SubsetEvaluator`] — brute-force enumeration support: each check
//!   becomes a bitmask over the **tuple universe** (all `2^n` tuples), so
//!   evaluating one of the `2^(2^n)` candidate objects is a handful of
//!   word operations on its subset mask, with no object materialized.

use crate::object::Obj;
use crate::query::{Expr, NormalForm, Query};
use crate::tuple::BoolTuple;
use crate::var::{VarId, VarSet};

/// The inline true-set word of a tuple over ≤ 64 variables.
#[inline]
fn tuple_word(t: &BoolTuple) -> u64 {
    t.true_set()
        .as_word()
        .expect("tuples of arity ≤ 64 have inline true-sets")
}

// ---------------------------------------------------------------------------
// Columnar matrices
// ---------------------------------------------------------------------------

/// Check masks evaluated per pass in the lane-unrolled kernels (an
/// explicit `u64x4`-style unroll on stable std — wide enough for the
/// compiler to emit vector AND/CMP sequences, narrow enough to stay in
/// registers).
pub const LANES: usize = 4;

/// Tuple words buffered per chunk on the arity ≤ 64 wide path (512 bytes
/// — a handful of cache lines, gathered once per chunk instead of once
/// per check pass).
const TUPLE_CHUNK: usize = 64;

/// A contiguous `u64` buffer whose payload starts on a cache-line (64-
/// byte) boundary: the allocation is padded by up to 7 words and the
/// payload window begins at the first aligned word. Safe code only —
/// alignment is achieved by offsetting into the over-allocation, not by
/// a custom allocator.
#[derive(Debug)]
struct WordBuf {
    data: Vec<u64>,
    off: usize,
    len: usize,
}

/// Words per cache line; the over-allocation margin of [`WordBuf`].
const CACHE_LINE_WORDS: usize = 8;

impl WordBuf {
    fn zeroed(len: usize) -> Self {
        let data = vec![0u64; len + CACHE_LINE_WORDS - 1];
        // `align_offset` on an 8-byte-aligned `*const u64` is 0..=7; the
        // `min` only guards the (never-taken) pessimistic return.
        let off = data
            .as_ptr()
            .align_offset(CACHE_LINE_WORDS * 8)
            .min(CACHE_LINE_WORDS - 1);
        WordBuf { data, off, len }
    }

    #[inline]
    fn words(&self) -> &[u64] {
        &self.data[self.off..self.off + self.len]
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        &mut self.data[self.off..self.off + self.len]
    }
}

impl Clone for WordBuf {
    fn clone(&self) -> Self {
        // A fresh allocation lands at a fresh address: realign rather
        // than copying the old offset.
        let mut fresh = WordBuf::zeroed(self.len);
        fresh.words_mut().copy_from_slice(self.words());
        fresh
    }
}

/// Column bitmaps over one object's tuples: `column(v)` has bit `i` set
/// iff tuple `i` has variable `v` true. All columns live in one
/// contiguous cache-line-aligned word buffer (column `v` occupies words
/// `[v·words_per_col, (v+1)·words_per_col)`), and the ragged-tail mask is
/// precomputed once at build time.
#[derive(Clone, Debug)]
pub struct TupleMatrix {
    rows: usize,
    words_per_col: usize,
    /// Valid-row mask of the **last** word of each column (`u64::MAX`
    /// when `rows` is a multiple of 64). Precomputed at build time so hot
    /// loops never recompute it.
    tail_mask: u64,
    /// Column-major bitmap data; see [`TupleMatrix::col`].
    buf: WordBuf,
}

impl TupleMatrix {
    /// Builds the matrix for an object.
    #[must_use]
    pub fn build(obj: &Obj) -> Self {
        let rows = obj.len();
        let n = obj.arity() as usize;
        let words = rows.div_ceil(64);
        let tail_mask = if rows.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (rows % 64)) - 1
        };
        let mut buf = WordBuf::zeroed(n * words);
        {
            let data = buf.words_mut();
            for (i, t) in obj.tuples().iter().enumerate() {
                for v in t.true_set().iter() {
                    data[v.index() * words + i / 64] |= 1 << (i % 64);
                }
            }
        }
        TupleMatrix {
            rows,
            words_per_col: words,
            tail_mask,
            buf,
        }
    }

    /// Number of tuples.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The bitmap column of variable `v`.
    #[inline]
    fn col(&self, v: usize) -> &[u64] {
        &self.buf.words()[v * self.words_per_col..(v + 1) * self.words_per_col]
    }

    /// Valid-row mask for word `w` (precomputed tail, full elsewhere).
    #[inline]
    fn word_mask(&self, w: usize) -> u64 {
        if w + 1 == self.words_per_col {
            self.tail_mask
        } else {
            u64::MAX
        }
    }

    /// `true` iff some tuple has all of `vars` true.
    ///
    /// Lane-unrolled: the AND-reduction runs [`LANES`] words (256 tuple
    /// rows) per step. Padding bits beyond `rows` are zero in every
    /// column, so once at least one column is ANDed in, no tail mask is
    /// needed.
    #[must_use]
    pub fn any_with_all(&self, vars: &VarSet) -> bool {
        if self.rows == 0 {
            return false;
        }
        if vars.is_empty() {
            return true;
        }
        let wpc = self.words_per_col;
        let mut w = 0;
        while w + LANES <= wpc {
            let mut acc = [u64::MAX; LANES];
            for v in vars.iter() {
                let col = self.col(v.index());
                for l in 0..LANES {
                    acc[l] &= col[w + l];
                }
                if acc.iter().fold(0, |a, &b| a | b) == 0 {
                    break;
                }
            }
            if acc.iter().fold(0, |a, &b| a | b) != 0 {
                return true;
            }
            w += LANES;
        }
        while w < wpc {
            let mut acc = u64::MAX;
            for v in vars.iter() {
                acc &= self.col(v.index())[w];
                if acc == 0 {
                    break;
                }
            }
            if acc != 0 {
                return true;
            }
            w += 1;
        }
        false
    }

    /// `true` iff some tuple has all of `body` true and `head` false — a
    /// violation of `∀ body → head`. Lane-unrolled like
    /// [`TupleMatrix::any_with_all`]; the head column is negated, so the
    /// (precomputed) tail mask re-zeroes the padding rows.
    #[must_use]
    pub fn any_violating(&self, body: &VarSet, head: VarId) -> bool {
        if self.rows == 0 {
            return false;
        }
        let wpc = self.words_per_col;
        let hcol = self.col(head.index());
        let mut w = 0;
        while w + LANES <= wpc {
            let mut acc = [0u64; LANES];
            for l in 0..LANES {
                acc[l] = self.word_mask(w + l) & !hcol[w + l];
            }
            if acc.iter().fold(0, |a, &b| a | b) != 0 {
                for v in body.iter() {
                    let col = self.col(v.index());
                    for l in 0..LANES {
                        acc[l] &= col[w + l];
                    }
                    if acc.iter().fold(0, |a, &b| a | b) == 0 {
                        break;
                    }
                }
                if acc.iter().fold(0, |a, &b| a | b) != 0 {
                    return true;
                }
            }
            w += LANES;
        }
        while w < wpc {
            let mut acc = self.word_mask(w) & !hcol[w];
            if acc != 0 {
                for v in body.iter() {
                    acc &= self.col(v.index())[w];
                    if acc == 0 {
                        break;
                    }
                }
                if acc != 0 {
                    return true;
                }
            }
            w += 1;
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Compiled queries
// ---------------------------------------------------------------------------

/// The word-level check lists for arities ≤ 64, stored as parallel flat
/// arrays (violation `i` is `(bodies[i], heads[i])`) so the lane-unrolled
/// evaluator can load [`LANES`] consecutive check masks per pass.
#[derive(Clone, Debug)]
struct WordChecks {
    bodies: Vec<u64>,
    heads: Vec<u64>,
    witnesses: Vec<u64>,
}

/// A compiled, normalized qhorn query: the check lists described in the
/// module docs, plus their single-word form when the arity permits.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    n: u16,
    violations: Vec<(VarSet, VarId)>,
    witnesses: Vec<VarSet>,
    words: Option<WordChecks>,
}

impl CompiledQuery {
    /// Compiles a query: normalization (rules R1/R2/R3 prune redundant
    /// checks) plus static check ordering. Matches [`Query::accepts`] —
    /// full qhorn semantics with guarantee clauses enforced.
    #[must_use]
    pub fn compile(q: &Query) -> Self {
        Self::from_normal_form(&q.normal_form())
    }

    /// Compiles from an already-computed normal form (call sites that
    /// hold one avoid recomputing it).
    #[must_use]
    pub fn from_normal_form(nf: &NormalForm) -> Self {
        let violations: Vec<(VarSet, VarId)> = nf.universals().iter().cloned().collect();
        let mut witnesses: Vec<VarSet> = nf.existentials().iter().cloned().collect();
        // Largest conjunctions are hardest to witness: check them first.
        witnesses.sort_by_key(|c| std::cmp::Reverse(c.len()));
        Self::assemble(nf.arity(), violations, witnesses)
    }

    /// Compiles a query under the footnote-1 relaxation: universal
    /// expressions do not require guarantee witnesses. Matches
    /// [`Query::accepts_without_universal_guarantees`].
    ///
    /// This intentionally skips normalization: rule R2 preserves *strict*
    /// semantics by demoting a dominated universal to its guarantee
    /// conjunction, which the relaxed semantics does not require.
    #[must_use]
    pub fn compile_relaxed(q: &Query) -> Self {
        let mut violations: Vec<(VarSet, VarId)> = Vec::new();
        for (b, h) in q.universal_horns() {
            let pair = (b.clone(), h);
            if !violations.contains(&pair) {
                violations.push(pair);
            }
        }
        let mut witnesses: Vec<VarSet> = Vec::new();
        for c in q.existential_conjunctions() {
            if !witnesses.contains(&c) {
                witnesses.push(c);
            }
        }
        witnesses.sort_by_key(|c| std::cmp::Reverse(c.len()));
        Self::assemble(q.arity(), violations, witnesses)
    }

    fn assemble(n: u16, violations: Vec<(VarSet, VarId)>, witnesses: Vec<VarSet>) -> Self {
        let words = (n <= 64).then(|| WordChecks {
            bodies: violations
                .iter()
                .map(|(b, _)| b.as_word().expect("arity ≤ 64 bodies are inline"))
                .collect(),
            heads: violations.iter().map(|(_, h)| 1u64 << h.index()).collect(),
            witnesses: witnesses
                .iter()
                .map(|w| w.as_word().expect("arity ≤ 64 conjunctions are inline"))
                .collect(),
        });
        CompiledQuery {
            n,
            violations,
            witnesses,
            words,
        }
    }

    /// Query arity.
    #[must_use]
    pub fn arity(&self) -> u16 {
        self.n
    }

    /// Number of compiled checks (violations + witnesses).
    #[must_use]
    pub fn check_count(&self) -> usize {
        self.violations.len() + self.witnesses.len()
    }

    /// The violation checks, as `(body, head)` pairs.
    #[must_use]
    pub fn violations(&self) -> &[(VarSet, VarId)] {
        &self.violations
    }

    /// The witness checks, largest first.
    #[must_use]
    pub fn witnesses(&self) -> &[VarSet] {
        &self.witnesses
    }

    /// Objects at least this many tuples wide amortize building a
    /// columnar matrix on the > 64-variable path; smaller objects run
    /// the direct per-tuple checks (membership questions are typically a
    /// handful of tuples — building a matrix per question would dominate).
    const MATRIX_ROWS_THRESHOLD: usize = 256;

    /// Evaluates the compiled query on an object. Arity ≤ 64 runs the
    /// allocation-free lane-unrolled word path ([`LANES`] check masks per
    /// pass over chunk-buffered tuple words); wider arities check tuples
    /// directly, switching to a columnar matrix sweep for large objects.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    #[must_use]
    pub fn matches(&self, obj: &Obj) -> bool {
        assert_eq!(obj.arity(), self.n, "arity mismatch");
        match &self.words {
            Some(w) => self.matches_words_wide(w, obj),
            None if obj.len() >= Self::MATRIX_ROWS_THRESHOLD => {
                self.matches_matrix(&TupleMatrix::build(obj))
            }
            None => self.matches_direct(obj),
        }
    }

    /// [`CompiledQuery::matches`] through the **single-word scalar**
    /// evaluator: one check mask at a time, one branchy compare per tuple
    /// — the pre-lane-unrolling kernel. Kept as the differential-test
    /// oracle and the benchmark baseline the wide path is measured
    /// against; non-word arities dispatch exactly like `matches`.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    #[must_use]
    pub fn matches_scalar(&self, obj: &Obj) -> bool {
        assert_eq!(obj.arity(), self.n, "arity mismatch");
        match &self.words {
            Some(w) => self.matches_words_scalar(w, obj),
            None if obj.len() >= Self::MATRIX_ROWS_THRESHOLD => {
                self.matches_matrix(&TupleMatrix::build(obj))
            }
            None => self.matches_direct(obj),
        }
    }

    /// Generic per-tuple checks for arities > 64 (multi-word `VarSet`
    /// operations, no matrix build).
    fn matches_direct(&self, obj: &Obj) -> bool {
        for t in obj.tuples() {
            let trues = t.true_set();
            for (body, head) in &self.violations {
                if body.is_subset(trues) && !trues.contains(*head) {
                    return false;
                }
            }
        }
        self.witnesses.iter().all(|w| obj.some_tuple_satisfies(w))
    }

    /// The scalar word evaluator: per-tuple violation compares, then one
    /// pass over the tuples per witness check.
    fn matches_words_scalar(&self, w: &WordChecks, obj: &Obj) -> bool {
        for t in obj.tuples() {
            let tw = tuple_word(t);
            for (&body, &head) in w.bodies.iter().zip(&w.heads) {
                if tw & body == body && tw & head == 0 {
                    return false;
                }
            }
        }
        'witness: for &need in &w.witnesses {
            for t in obj.tuples() {
                if tuple_word(t) & need == need {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// The lane-unrolled word evaluator: a **single pass** over the
    /// object. Tuple words are gathered into a fixed stack buffer in
    /// chunks of [`TUPLE_CHUNK`]; each pass over a chunk evaluates
    /// [`LANES`] check masks branchlessly, and witness satisfaction is a
    /// `u64` bitmask (bit `i` = witness `i` still unmet) cleared as
    /// chunks are swept. Falls back to the scalar evaluator in the
    /// (degenerate) > 64-witness case, where the bitmask would spill.
    fn matches_words_wide(&self, w: &WordChecks, obj: &Obj) -> bool {
        if w.witnesses.len() > 64 {
            return self.matches_words_scalar(w, obj);
        }
        let mut unmet: u64 = if w.witnesses.is_empty() {
            0
        } else {
            u64::MAX >> (64 - w.witnesses.len())
        };
        let mut buf = [0u64; TUPLE_CHUNK];
        for chunk in obj.tuples().chunks(TUPLE_CHUNK) {
            for (i, t) in chunk.iter().enumerate() {
                buf[i] = tuple_word(t);
            }
            let words = &buf[..chunk.len()];

            // Violations: LANES check masks per pass over the chunk.
            let mut vi = 0;
            while vi + LANES <= w.bodies.len() {
                let b: [u64; LANES] = w.bodies[vi..vi + LANES].try_into().unwrap();
                let h: [u64; LANES] = w.heads[vi..vi + LANES].try_into().unwrap();
                for &tw in words {
                    let mut hit = false;
                    for l in 0..LANES {
                        hit |= (tw & b[l] == b[l]) & (tw & h[l] == 0);
                    }
                    if hit {
                        return false;
                    }
                }
                vi += LANES;
            }
            for j in vi..w.bodies.len() {
                let (b, h) = (w.bodies[j], w.heads[j]);
                for &tw in words {
                    if tw & b == b && tw & h == 0 {
                        return false;
                    }
                }
            }

            // Witnesses: LANES need masks per pass, results folded into
            // the unmet bitmask; fully-met lane groups are skipped.
            if unmet != 0 {
                let mut wi = 0;
                while wi + LANES <= w.witnesses.len() {
                    let group = ((1u64 << LANES) - 1) << wi;
                    if unmet & group != 0 {
                        let n: [u64; LANES] = w.witnesses[wi..wi + LANES].try_into().unwrap();
                        let mut met = 0u64;
                        for &tw in words {
                            for (l, &need) in n.iter().enumerate() {
                                met |= u64::from(tw & need == need) << (wi + l);
                            }
                        }
                        unmet &= !met;
                    }
                    wi += LANES;
                }
                for j in wi..w.witnesses.len() {
                    if unmet & (1 << j) != 0 {
                        let need = w.witnesses[j];
                        if words.iter().any(|&tw| tw & need == need) {
                            unmet &= !(1 << j);
                        }
                    }
                }
            }
        }
        unmet == 0
    }

    /// Evaluates the compiled query on a prebuilt matrix (bulk execution
    /// paths that sweep many checks over wide objects).
    #[must_use]
    pub fn matches_matrix(&self, m: &TupleMatrix) -> bool {
        for (b, h) in &self.violations {
            if m.any_violating(b, *h) {
                return false;
            }
        }
        for w in &self.witnesses {
            if !m.any_with_all(w) {
                return false;
            }
        }
        true
    }
}

// ---------------------------------------------------------------------------
// One-shot evaluation
// ---------------------------------------------------------------------------

/// One-shot evaluation of `q` on `obj` under full qhorn semantics
/// (guarantee clauses enforced) — Def. 2.4. No normalization pass; each
/// expression is checked directly with word operations.
///
/// # Panics
/// Panics on arity mismatch.
#[must_use]
pub fn accepts(q: &Query, obj: &Obj) -> bool {
    assert_eq!(
        obj.arity(),
        q.arity(),
        "object arity {} does not match query arity {}",
        obj.arity(),
        q.arity()
    );
    q.exprs().iter().all(|e| expr_holds(e, obj, true))
}

/// One-shot evaluation under the footnote-1 relaxation (§3.2.2):
/// universal expressions do not require guarantee witnesses; existential
/// expressions still do (they *are* their guarantee clauses).
///
/// # Panics
/// Panics on arity mismatch.
#[must_use]
pub fn accepts_without_universal_guarantees(q: &Query, obj: &Obj) -> bool {
    assert_eq!(obj.arity(), q.arity());
    q.exprs().iter().all(|e| expr_holds(e, obj, false))
}

/// One expression under the kernel: universal expressions need no
/// violating tuple (plus, when `guarantees`, a witness of `body ∪ {head}`);
/// existential expressions need a witness of their participating set.
fn expr_holds(e: &Expr, obj: &Obj, guarantees: bool) -> bool {
    if obj.arity() <= 64 {
        return expr_holds_words(e, obj, guarantees);
    }
    match e {
        Expr::UniversalHorn { body, head } => {
            let no_violation = obj
                .tuples()
                .iter()
                .all(|t| !t.satisfies_all(body) || t.get(*head));
            no_violation && (!guarantees || obj.some_tuple_satisfies(&body.with(*head)))
        }
        Expr::ExistentialHorn { body, head } => obj.some_tuple_satisfies(&body.with(*head)),
        Expr::ExistentialConj { vars } => obj.some_tuple_satisfies(vars),
    }
}

/// Single-word fast path: one pass over the tuples per expression.
fn expr_holds_words(e: &Expr, obj: &Obj, guarantees: bool) -> bool {
    match e {
        Expr::UniversalHorn { body, head } => {
            let b = body.as_word().expect("inline body");
            let h = 1u64 << head.index();
            let need = b | h;
            let mut witnessed = !guarantees;
            for t in obj.tuples() {
                let w = tuple_word(t);
                if w & b == b && w & h == 0 {
                    return false;
                }
                witnessed |= w & need == need;
            }
            witnessed
        }
        Expr::ExistentialHorn { body, head } => {
            let need = body.as_word().expect("inline body") | (1u64 << head.index());
            obj.tuples().iter().any(|t| tuple_word(t) & need == need)
        }
        Expr::ExistentialConj { vars } => {
            let need = vars.as_word().expect("inline conjunction");
            obj.tuples().iter().any(|t| tuple_word(t) & need == need)
        }
    }
}

// ---------------------------------------------------------------------------
// Failure explanation (borrowed)
// ---------------------------------------------------------------------------

/// Why an object fails a query — the first failing expression, with the
/// evidence **borrowed** from the query and object rather than cloned
/// (explain-style output stays cheap; convert with
/// [`Failure::to_reason`] when ownership is needed).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Failure<'q, 'o> {
    /// A universal Horn expression is violated by a specific tuple.
    UniversalViolated {
        /// Index of the failing expression in [`Query::exprs`].
        expr: usize,
        /// The expression's body, borrowed from the query.
        body: &'q VarSet,
        /// The expression's head.
        head: VarId,
        /// The violating tuple (body true, head false), borrowed from the
        /// object.
        tuple: &'o BoolTuple,
    },
    /// An existential conjunction (or guarantee clause) has no witness.
    MissingWitness {
        /// Index of the failing expression in [`Query::exprs`].
        expr: usize,
        /// The conjunction with no witness tuple (inline, so owning it
        /// here allocates nothing for arities ≤ 64).
        vars: VarSet,
    },
}

impl Failure<'_, '_> {
    /// Converts into the owned [`crate::query::FailureReason`].
    #[must_use]
    pub fn to_reason(&self) -> crate::query::FailureReason {
        match self {
            Failure::UniversalViolated {
                body, head, tuple, ..
            } => crate::query::FailureReason::UniversalViolated {
                body: (*body).clone(),
                head: *head,
                tuple: (*tuple).clone(),
            },
            Failure::MissingWitness { vars, .. } => {
                crate::query::FailureReason::MissingWitness { vars: vars.clone() }
            }
        }
    }

    /// Index of the failing expression in [`Query::exprs`].
    #[must_use]
    pub fn expr_index(&self) -> usize {
        match self {
            Failure::UniversalViolated { expr, .. } | Failure::MissingWitness { expr, .. } => *expr,
        }
    }
}

impl std::fmt::Display for Failure<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&self.to_reason(), f)
    }
}

/// Explains why `obj` is a non-answer, or `None` if it is an answer.
/// Reports the first failing expression in query order (universal
/// violations before missing guarantees within one expression).
///
/// # Panics
/// Panics on arity mismatch.
#[must_use]
pub fn explain<'q, 'o>(q: &'q Query, obj: &'o Obj) -> Option<Failure<'q, 'o>> {
    assert_eq!(obj.arity(), q.arity());
    let small = obj.arity() <= 64;
    for (i, e) in q.exprs().iter().enumerate() {
        match e {
            Expr::UniversalHorn { body, head } => {
                let violating = if small {
                    let b = body.as_word().expect("inline body");
                    let h = 1u64 << head.index();
                    obj.tuples()
                        .iter()
                        .find(|t| tuple_word(t) & b == b && tuple_word(t) & h == 0)
                } else {
                    obj.tuples()
                        .iter()
                        .find(|t| t.satisfies_all(body) && !t.get(*head))
                };
                if let Some(t) = violating {
                    return Some(Failure::UniversalViolated {
                        expr: i,
                        body,
                        head: *head,
                        tuple: t,
                    });
                }
                let g = body.with(*head);
                if !obj.some_tuple_satisfies(&g) {
                    return Some(Failure::MissingWitness { expr: i, vars: g });
                }
            }
            Expr::ExistentialHorn { body, head } => {
                let g = body.with(*head);
                if !obj.some_tuple_satisfies(&g) {
                    return Some(Failure::MissingWitness { expr: i, vars: g });
                }
            }
            Expr::ExistentialConj { vars } => {
                if !obj.some_tuple_satisfies(vars) {
                    return Some(Failure::MissingWitness {
                        expr: i,
                        vars: vars.clone(),
                    });
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Subset-space evaluation (brute-force enumeration)
// ---------------------------------------------------------------------------

/// Evaluates a query against **subset masks** of the full tuple universe
/// (`2^n` tuples, `n ≤ 6` so the universe fits one `u64`). Each compiled
/// check is lifted to a bitmask over tuple codes — bit `w` of a mask
/// refers to the tuple whose true-set word is `w` — so deciding one of
/// the `2^(2^n)` candidate objects is O(checks) word operations and no
/// object is ever materialized. This is what makes brute-force
/// equivalence ([`crate::query::equiv::equivalent_brute_force`])
/// affordable at `n = 5`.
#[derive(Clone, Debug)]
pub struct SubsetEvaluator {
    n: u16,
    /// Per violation check: the set of tuple codes that refute the query.
    violations: Vec<u64>,
    /// Per witness check: the set of tuple codes that witness it.
    witnesses: Vec<u64>,
}

impl SubsetEvaluator {
    /// Lifts a query's compiled checks to tuple-universe masks.
    ///
    /// # Panics
    /// Panics if `n > 6` (the tuple universe would exceed one word).
    #[must_use]
    pub fn new(q: &Query) -> Self {
        let n = q.arity();
        assert!(n <= 6, "subset evaluation needs a ≤ 64-tuple universe");
        let plan = CompiledQuery::compile(q);
        let words = plan.words.as_ref().expect("n ≤ 6 compiles to words");
        let codes = 1u64 << n; // number of tuples in the universe, ≤ 64
        let mut violations = vec![0u64; words.bodies.len()];
        let mut witnesses = vec![0u64; words.witnesses.len()];
        for code in 0..codes {
            for (i, (&body, &head)) in words.bodies.iter().zip(&words.heads).enumerate() {
                if code & body == body && code & head == 0 {
                    violations[i] |= 1u64 << code;
                }
            }
            for (i, &need) in words.witnesses.iter().enumerate() {
                if code & need == need {
                    witnesses[i] |= 1u64 << code;
                }
            }
        }
        SubsetEvaluator {
            n,
            violations,
            witnesses,
        }
    }

    /// Query arity.
    #[must_use]
    pub fn arity(&self) -> u16 {
        self.n
    }

    /// Total number of candidate objects, i.e. `2^(2^n)` — `None` when it
    /// overflows `u64` (n = 6).
    #[must_use]
    pub fn subset_count(&self) -> Option<u64> {
        1u64.checked_shl(1u32 << self.n)
    }

    /// Evaluates the query on the object whose tuple set is `mask` (bit
    /// `w` ⇔ the tuple with true-set word `w` is present). Lane-unrolled:
    /// [`LANES`] check masks are tested per step, branchless within a
    /// group — this is the innermost loop of `2^(2^n)`-object brute-force
    /// enumeration, so per-check branches matter.
    #[must_use]
    pub fn accepts_subset(&self, mask: u64) -> bool {
        let v = &self.violations;
        let mut vi = 0;
        while vi + LANES <= v.len() {
            let mut hit = 0u64;
            for l in 0..LANES {
                hit |= v[vi + l] & mask;
            }
            if hit != 0 {
                return false;
            }
            vi += LANES;
        }
        if v[vi..].iter().any(|x| x & mask != 0) {
            return false;
        }
        let w = &self.witnesses;
        let mut wi = 0;
        while wi + LANES <= w.len() {
            let mut all = true;
            for l in 0..LANES {
                all &= w[wi + l] & mask != 0;
            }
            if !all {
                return false;
            }
            wi += LANES;
        }
        w[wi..].iter().all(|x| x & mask != 0)
    }

    /// Materializes the object a subset mask denotes.
    #[must_use]
    pub fn object_of(&self, mask: u64) -> Obj {
        let n = self.n;
        Obj::new(
            n,
            (0..(1u64 << n))
                .filter(|code| mask & (1u64 << code) != 0)
                .map(|code| BoolTuple::from_true_set(n, VarSet::from_word(code))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::eval::reference;
    use crate::query::generate::{all_objects, all_tuples, enumerate_role_preserving};
    use crate::varset;
    use proptest::prelude::*;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    // -- TupleMatrix (moved from qhorn-engine's plan.rs) -------------------

    #[test]
    fn matrix_bitmap_checks() {
        let obj = Obj::from_bits("110 011 101");
        let m = TupleMatrix::build(&obj);
        assert_eq!(m.rows(), 3);
        assert!(m.any_with_all(&varset![1, 2]));
        assert!(!m.any_with_all(&varset![1, 2, 3]));
        assert!(
            m.any_with_all(&VarSet::new()),
            "empty conjunction, non-empty object"
        );
        assert!(m.any_violating(&varset![1], v(3)), "110 violates ∀x1→x3");
        assert!(
            m.any_violating(&varset![2, 3], v(1)),
            "011 violates ∀x2x3→x1"
        );
        assert!(
            !m.any_violating(&varset![1, 2, 3], v(1)),
            "no tuple satisfies the whole body"
        );
    }

    #[test]
    fn matrix_violation_details() {
        let obj = Obj::from_bits("011");
        let m = TupleMatrix::build(&obj);
        assert!(m.any_violating(&varset![2, 3], v(1)));
        assert!(!m.any_violating(&varset![1, 2], v(3)));
        // Bodyless: any tuple with head false violates.
        assert!(m.any_violating(&VarSet::new(), v(1)));
        assert!(!m.any_violating(&VarSet::new(), v(2)));
    }

    #[test]
    fn empty_object_matrix() {
        let m = TupleMatrix::build(&Obj::empty(3));
        assert!(!m.any_with_all(&VarSet::new()));
        assert!(!m.any_violating(&VarSet::new(), v(1)));
    }

    #[test]
    fn wide_objects_cross_word_boundaries() {
        // > 64 tuples exercises multi-word bitmaps.
        let n = 7u16;
        let obj = Obj::new(n, all_tuples(n));
        assert!(obj.len() > 64);
        let m = TupleMatrix::build(&obj);
        assert!(m.any_with_all(&VarSet::full(n)));
        assert!(m.any_violating(&varset![1, 2, 3], v(7)));
        let q = Query::new(n, [Expr::conj(VarSet::full(n))]).unwrap();
        assert!(CompiledQuery::compile(&q).matches(&obj));
    }

    // -- CompiledQuery -----------------------------------------------------

    #[test]
    fn compiled_matches_naive_eval_exhaustively() {
        // CompiledQuery::matches must agree with the naive reference on
        // every object for a spread of queries on 3 variables — on both
        // the word path and the matrix path.
        let queries = [
            Query::new(
                3,
                [Expr::universal(varset![1], v(3)), Expr::conj(varset![2])],
            )
            .unwrap(),
            Query::new(3, [Expr::universal_bodyless(v(1))]).unwrap(),
            Query::new(3, [Expr::conj(varset![1, 2, 3])]).unwrap(),
            Query::new(
                3,
                [
                    Expr::universal(varset![1, 2], v(3)),
                    Expr::existential_horn(varset![1], v(2)),
                ],
            )
            .unwrap(),
            Query::empty(3),
        ];
        for q in &queries {
            let plan = CompiledQuery::compile(q);
            for obj in all_objects(3) {
                let expected = reference::accepts(q, &obj);
                assert_eq!(plan.matches(&obj), expected, "query {q} object {obj}");
                assert_eq!(
                    plan.matches_matrix(&TupleMatrix::build(&obj)),
                    expected,
                    "matrix path, query {q} object {obj}"
                );
            }
        }
    }

    #[test]
    fn compiled_agrees_on_enumerated_two_variable_queries() {
        for q in enumerate_role_preserving(2, false) {
            let plan = CompiledQuery::compile(&q);
            for obj in all_objects(2) {
                assert_eq!(
                    plan.matches(&obj),
                    reference::accepts(&q, &obj),
                    "query {q} object {obj}"
                );
            }
        }
    }

    #[test]
    fn normalization_shrinks_checks() {
        // Redundant expressions disappear at compile time.
        let q = Query::new(
            3,
            [
                Expr::conj(varset![1, 2, 3]),
                Expr::conj(varset![1, 2]),
                Expr::conj(varset![1]),
                Expr::universal(varset![1], v(3)),
                Expr::universal(varset![1, 2], v(3)),
            ],
        )
        .unwrap();
        let plan = CompiledQuery::compile(&q);
        assert_eq!(plan.check_count(), 2, "one violation + one witness remain");
        assert_eq!(plan.violations().len(), 1);
        assert_eq!(plan.witnesses().len(), 1);
    }

    #[test]
    fn wide_arity_falls_back_to_matrix() {
        // Arity 70 > 64: no word plan, matrix path still correct.
        let n = 70u16;
        let q = Query::new(
            n,
            [
                Expr::universal(VarSet::from_indices([0, 65]), VarId(69)),
                Expr::conj(VarSet::from_indices([1, 68])),
            ],
        )
        .unwrap();
        let plan = CompiledQuery::compile(&q);
        assert!(plan.words.is_none());
        let yes = Obj::new(
            n,
            [
                BoolTuple::from_true_set(n, VarSet::from_indices([0, 65, 69])),
                BoolTuple::from_true_set(n, VarSet::from_indices([1, 68])),
            ],
        );
        let no = yes.with_tuple(BoolTuple::from_true_set(
            n,
            VarSet::from_indices([0, 65, 68]),
        ));
        assert!(plan.matches(&yes));
        assert!(!plan.matches(&no), "violating tuple added");
        assert_eq!(plan.matches(&yes), reference::accepts(&q, &yes));
        assert_eq!(plan.matches(&no), reference::accepts(&q, &no));
    }

    #[test]
    fn relaxed_compilation_matches_relaxed_semantics() {
        // R2 normalization would be wrong here: the dominated ∀x1x2→x3
        // must NOT leave a guarantee conjunction behind under relaxed
        // semantics.
        let q = Query::new(
            3,
            [
                Expr::universal(varset![1], v(3)),
                Expr::universal(varset![1, 2], v(3)),
            ],
        )
        .unwrap();
        let relaxed = CompiledQuery::compile_relaxed(&q);
        for obj in all_objects(3) {
            assert_eq!(
                relaxed.matches(&obj),
                reference::accepts_without_universal_guarantees(&q, &obj),
                "object {obj}"
            );
        }
    }

    // -- one-shot kernel evaluation vs the naive reference ----------------

    /// Random query over `n` variables (any expression shape).
    fn arb_query(n: u16) -> impl Strategy<Value = Query> {
        let vars = move || {
            prop::collection::btree_set(0..n, 0..=n as usize)
                .prop_map(|ids| ids.into_iter().map(VarId).collect::<VarSet>())
        };
        let universal = (0..n, vars()).prop_map(|(h, mut body)| {
            body.remove(VarId(h));
            Expr::universal(body, VarId(h))
        });
        let ehorn = (0..n, vars()).prop_map(|(h, mut body)| {
            body.remove(VarId(h));
            Expr::existential_horn(body, VarId(h))
        });
        let conj = vars()
            .prop_filter("non-empty", |s| !s.is_empty())
            .prop_map(Expr::conj);
        prop::collection::vec(prop_oneof![universal, ehorn, conj], 0..5)
            .prop_map(move |exprs| Query::new(n, exprs).expect("valid by construction"))
    }

    fn arb_object(n: u16) -> impl Strategy<Value = Obj> {
        prop::collection::vec(
            prop::collection::btree_set(0..n, 0..=n as usize).prop_map(move |ids| {
                BoolTuple::from_true_set(n, ids.into_iter().map(VarId).collect())
            }),
            0..6,
        )
        .prop_map(move |ts| Obj::new(n, ts))
    }

    /// Differential property: SIMD-wide ≡ single-word scalar ≡ naive
    /// reference, for one-shot, compiled-strict, and compiled-relaxed
    /// paths. Arities 1–8 cover the everyday range; 63/64/65 pin the
    /// inline-word boundary (65 exercises the spilled `VarSet` path,
    /// where `words` is `None` and wide/scalar collapse to the generic
    /// evaluator).
    macro_rules! kernel_differential {
        ($($name:ident: $n:expr, $cases:expr;)*) => {
            $(
                proptest! {
                    #![proptest_config(ProptestConfig::with_cases($cases))]
                    #[test]
                    fn $name(q in arb_query($n), obj in arb_object($n)) {
                        let naive = reference::accepts(&q, &obj);
                        prop_assert_eq!(accepts(&q, &obj), naive, "one-shot vs naive: {} on {}", q, obj);
                        let plan = CompiledQuery::compile(&q);
                        prop_assert_eq!(
                            plan.matches(&obj),
                            naive,
                            "compiled wide vs naive: {} on {}", q, obj
                        );
                        prop_assert_eq!(
                            plan.matches_scalar(&obj),
                            naive,
                            "compiled scalar vs naive: {} on {}", q, obj
                        );
                        prop_assert_eq!(
                            plan.matches_matrix(&TupleMatrix::build(&obj)),
                            naive,
                            "matrix vs naive: {} on {}", q, obj
                        );
                        let relaxed_naive = reference::accepts_without_universal_guarantees(&q, &obj);
                        prop_assert_eq!(
                            accepts_without_universal_guarantees(&q, &obj),
                            relaxed_naive,
                            "one-shot relaxed vs naive: {} on {}", q, obj
                        );
                        let relaxed = CompiledQuery::compile_relaxed(&q);
                        prop_assert_eq!(
                            relaxed.matches(&obj),
                            relaxed_naive,
                            "compiled relaxed wide vs naive: {} on {}", q, obj
                        );
                        prop_assert_eq!(
                            relaxed.matches_scalar(&obj),
                            relaxed_naive,
                            "compiled relaxed scalar vs naive: {} on {}", q, obj
                        );
                    }
                }
            )*
        };
    }

    kernel_differential! {
        differential_arity_1: 1, 48;
        differential_arity_2: 2, 48;
        differential_arity_3: 3, 48;
        differential_arity_4: 4, 48;
        differential_arity_5: 5, 48;
        differential_arity_6: 6, 48;
        differential_arity_7: 7, 48;
        differential_arity_8: 8, 48;
        differential_arity_63: 63, 24;
        differential_arity_64: 64, 24;
        differential_arity_65: 65, 24;
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Objects larger than one gather chunk (64 tuples): the wide
        /// path's chunked witness bookkeeping must agree with the scalar
        /// and naive evaluators across the chunk boundary.
        #[test]
        fn wide_path_crosses_tuple_chunk_boundaries(
            q in arb_query(32),
            seed_tuples in prop::collection::vec(
                prop::collection::btree_set(0u16..32, 0..=32usize),
                60..=70,
            ),
            repeat in 1usize..=3,
        ) {
            // Repeat the tuple pool to reach up to ~210 rows (deduped by
            // Obj construction; still crosses the 64- and 128-row marks).
            let tuples: Vec<BoolTuple> = seed_tuples
                .iter()
                .cycle()
                .take(seed_tuples.len() * repeat)
                .map(|ids| BoolTuple::from_true_set(32, ids.iter().map(|&i| VarId(i)).collect()))
                .collect();
            let obj = Obj::new(32, tuples);
            let naive = reference::accepts(&q, &obj);
            let plan = CompiledQuery::compile(&q);
            prop_assert_eq!(plan.matches(&obj), naive, "wide: {} on {} tuples", q, obj.len());
            prop_assert_eq!(plan.matches_scalar(&obj), naive, "scalar: {} on {} tuples", q, obj.len());
            prop_assert_eq!(
                plan.matches_matrix(&TupleMatrix::build(&obj)),
                naive,
                "matrix: {} on {} tuples", q, obj.len()
            );
        }
    }

    // -- explain -----------------------------------------------------------

    #[test]
    fn explain_borrows_and_converts() {
        let q = Query::new(3, [Expr::universal(varset![1, 2], v(3))]).unwrap();
        let obj = Obj::from_bits("111 110");
        let why = explain(&q, &obj).unwrap();
        match why {
            Failure::UniversalViolated {
                expr, body, tuple, ..
            } => {
                assert_eq!(expr, 0);
                assert!(std::ptr::eq(
                    body,
                    match &q.exprs()[0] {
                        Expr::UniversalHorn { body, .. } => body,
                        _ => unreachable!(),
                    }
                ));
                assert_eq!(tuple.to_bits(), "110");
            }
            other => panic!("expected a violation, got {other:?}"),
        }
        assert!(why.to_string().contains("violates"));
        assert_eq!(why.expr_index(), 0);
        let owned = why.to_reason();
        assert!(matches!(
            owned,
            crate::query::FailureReason::UniversalViolated { .. }
        ));
        assert!(explain(&q, &Obj::from_bits("111")).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `explain` returns `Some` exactly on non-answers, and the
        /// reported expression really fails.
        #[test]
        fn explain_agrees_with_accepts(q in arb_query(5), obj in arb_object(5)) {
            match explain(&q, &obj) {
                None => prop_assert!(reference::accepts(&q, &obj)),
                Some(f) => {
                    prop_assert!(!reference::accepts(&q, &obj));
                    let failing = Query::new(q.arity(), [q.exprs()[f.expr_index()].clone()]).unwrap();
                    prop_assert!(!reference::accepts(&failing, &obj));
                }
            }
        }
    }

    // -- SubsetEvaluator ---------------------------------------------------

    #[test]
    fn subset_evaluator_agrees_with_object_evaluation() {
        // Every enumerated arity-2 query × all 16 subsets of its 4-tuple
        // universe: mask evaluation ≡ object evaluation.
        for q in enumerate_role_preserving(2, true) {
            let ev = SubsetEvaluator::new(&q);
            for mask in 0..ev.subset_count().unwrap() {
                let obj = ev.object_of(mask);
                assert_eq!(
                    ev.accepts_subset(mask),
                    reference::accepts(&q, &obj),
                    "query {q} mask {mask:#b} object {obj}"
                );
            }
        }
        // Arity 3: a structured query sample × all 256 subsets of the
        // 8-tuple universe (exercises multi-bit tuple codes).
        let queries = [
            Query::new(
                3,
                [Expr::universal(varset![1], v(3)), Expr::conj(varset![2])],
            )
            .unwrap(),
            Query::new(3, [Expr::universal(varset![1, 2], v(3))]).unwrap(),
            Query::new(3, [Expr::conj(varset![1, 2, 3])]).unwrap(),
            Query::empty(3),
        ];
        for q in &queries {
            let ev = SubsetEvaluator::new(q);
            for mask in 0..ev.subset_count().unwrap() {
                let obj = ev.object_of(mask);
                assert_eq!(
                    ev.accepts_subset(mask),
                    reference::accepts(q, &obj),
                    "query {q} mask {mask:#b} object {obj}"
                );
            }
        }
    }

    #[test]
    fn subset_evaluator_object_round_trip() {
        let q = Query::new(3, [Expr::conj(varset![1, 2])]).unwrap();
        let ev = SubsetEvaluator::new(&q);
        assert_eq!(ev.arity(), 3);
        assert_eq!(ev.subset_count(), Some(256));
        // Mask with tuples 110 (code 0b011) and 000 (code 0).
        let mask = (1u64 << 0b011) | 1;
        let obj = ev.object_of(mask);
        assert_eq!(obj.len(), 2);
        assert!(obj.contains(&BoolTuple::from_bits("110")));
        assert!(obj.contains(&BoolTuple::from_bits("000")));
        assert!(ev.accepts_subset(mask));
        assert!(!ev.accepts_subset(0), "empty object misses the witness");
    }

    #[test]
    fn subset_count_overflows_at_n6() {
        let q = Query::empty(6);
        let ev = SubsetEvaluator::new(&q);
        assert_eq!(ev.subset_count(), None, "2^64 subsets");
        assert!(ev.accepts_subset(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "≤ 64-tuple universe")]
    fn subset_evaluator_rejects_wide_arities() {
        let _ = SubsetEvaluator::new(&Query::empty(7));
    }
}
