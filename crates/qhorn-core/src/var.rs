//! Variables and variable sets.
//!
//! Propositions over the embedded relation are abstracted into Boolean
//! variables `x1, ..., xn` (§2 of the paper). Internally variables are
//! 0-based indices ([`VarId`]); the `Display` impl and the
//! [`VarId::from_one_based`]/[`VarId::one_based`] helpers use the paper's
//! 1-based `x1..xn` convention.
//!
//! [`VarSet`] is a bitset used pervasively: Horn-expression bodies,
//! conjunction variable sets, true-sets of Boolean tuples, lattice
//! bookkeeping. Sets whose members all fit in one machine word (every
//! variable index < 64 — which covers every workload this system runs)
//! are stored **inline** as a single `u64`; only wider universes spill to
//! a heap vector. Inline sets make the evaluation kernel's hot loops
//! allocation-free: `clone`, `with`, `union`, `is_subset`, … are plain
//! word operations. The representation is canonical either way (no
//! trailing zero words, inline whenever possible) so that `Eq`/`Ord`/
//! `Hash` are structural.

use std::fmt;

/// Identifier of a Boolean variable (0-based).
///
/// `VarId(0)` corresponds to the paper's `x1`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VarId(pub u16);

impl VarId {
    /// Builds a `VarId` from the paper's 1-based index (`x1` → `from_one_based(1)`).
    ///
    /// # Panics
    /// Panics if `i == 0`.
    #[must_use]
    pub fn from_one_based(i: u16) -> Self {
        assert!(i > 0, "one-based variable indices start at 1");
        VarId(i - 1)
    }

    /// The paper's 1-based index of this variable.
    #[must_use]
    pub fn one_based(self) -> u16 {
        self.0 + 1
    }

    /// The 0-based index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.one_based())
    }
}

impl From<u16> for VarId {
    fn from(i: u16) -> Self {
        VarId(i)
    }
}

/// Storage for a [`VarSet`]: one inline word for universes of up to 64
/// variables, a heap vector beyond.
///
/// Canonical invariant: `Inline` whenever every member index is < 64
/// (including the empty set, `Inline(0)`); `Spilled` vectors have at
/// least two words and a non-zero last word.
#[derive(Clone)]
enum Words {
    Inline(u64),
    Spilled(Vec<u64>),
}

/// A set of Boolean variables, stored as a bitset.
///
/// The representation is canonical: two `VarSet`s are `==` iff they
/// contain the same variables, regardless of how they were built. Sets
/// over ≤ 64 variables are a single inline `u64` (no heap allocation);
/// see [`VarSet::as_word`].
#[derive(Clone)]
pub struct VarSet {
    words: Words,
}

impl Default for VarSet {
    fn default() -> Self {
        VarSet::new()
    }
}

impl PartialEq for VarSet {
    fn eq(&self, other: &Self) -> bool {
        self.word_slice() == other.word_slice()
    }
}

impl Eq for VarSet {}

impl PartialOrd for VarSet {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VarSet {
    /// Lexicographic on the canonical word sequence — the same total
    /// order the previous `Vec<u64>`-backed representation derived.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.word_slice().cmp(other.word_slice())
    }
}

impl std::hash::Hash for VarSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.word_slice().hash(state);
    }
}

impl VarSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        VarSet {
            words: Words::Inline(0),
        }
    }

    /// A singleton set.
    #[must_use]
    pub fn singleton(v: VarId) -> Self {
        let mut s = VarSet::new();
        s.insert(v);
        s
    }

    /// The full set `{x1, ..., xn}` over a universe of `n` variables.
    #[must_use]
    pub fn full(n: u16) -> Self {
        if n <= 64 {
            return VarSet::from_word(if n == 64 { u64::MAX } else { (1u64 << n) - 1 });
        }
        let mut s = VarSet::new();
        for i in 0..n {
            s.insert(VarId(i));
        }
        s
    }

    /// Builds a set from 0-based indices.
    #[must_use]
    pub fn from_indices<I: IntoIterator<Item = u16>>(ids: I) -> Self {
        ids.into_iter().map(VarId).collect()
    }

    /// Builds a set from the paper's 1-based indices (`[1, 4, 5]` → `{x1, x4, x5}`).
    #[must_use]
    pub fn from_one_based<I: IntoIterator<Item = u16>>(ids: I) -> Self {
        ids.into_iter().map(VarId::from_one_based).collect()
    }

    /// Builds a set from its first-word bitmask: bit `i` ↔ variable index
    /// `i`. The inline fast path the evaluation kernel works in.
    #[must_use]
    pub fn from_word(bits: u64) -> Self {
        VarSet {
            words: Words::Inline(bits),
        }
    }

    /// The set's bitmask when every member index is < 64 (always the case
    /// for workloads of arity ≤ 64), `None` for spilled sets.
    #[must_use]
    pub fn as_word(&self) -> Option<u64> {
        match &self.words {
            Words::Inline(w) => Some(*w),
            Words::Spilled(_) => None,
        }
    }

    /// Builds a set from raw 64-bit words (`words[i]` covers variable
    /// indices `64 i .. 64 i + 64`), re-canonicalizing.
    #[must_use]
    pub fn from_words(words: Vec<u64>) -> Self {
        let mut s = VarSet {
            words: Words::Spilled(words),
        };
        s.canonicalize();
        s
    }

    /// The canonical word sequence (no trailing zero words; empty for the
    /// empty set).
    fn word_slice(&self) -> &[u64] {
        match &self.words {
            Words::Inline(0) => &[],
            Words::Inline(w) => std::slice::from_ref(w),
            Words::Spilled(v) => v,
        }
    }

    /// Restores the canonical invariant after a mutation that may have
    /// cleared high words.
    fn canonicalize(&mut self) {
        if let Words::Spilled(v) = &mut self.words {
            while v.last() == Some(&0) {
                v.pop();
            }
            if v.len() <= 1 {
                self.words = Words::Inline(v.first().copied().unwrap_or(0));
            }
        }
    }

    /// Inserts a variable; returns `true` if it was newly added.
    pub fn insert(&mut self, v: VarId) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        match &mut self.words {
            Words::Inline(word) if w == 0 => {
                let had = *word & (1 << b) != 0;
                *word |= 1 << b;
                !had
            }
            Words::Inline(word) => {
                let mut words = vec![*word];
                words.resize(w + 1, 0);
                words[w] |= 1 << b;
                self.words = Words::Spilled(words);
                true
            }
            Words::Spilled(words) => {
                if w >= words.len() {
                    words.resize(w + 1, 0);
                }
                let had = words[w] & (1 << b) != 0;
                words[w] |= 1 << b;
                !had
            }
        }
    }

    /// Removes a variable; returns `true` if it was present.
    pub fn remove(&mut self, v: VarId) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        let had = match &mut self.words {
            Words::Inline(word) => {
                if w != 0 {
                    return false;
                }
                let had = *word & (1 << b) != 0;
                *word &= !(1 << b);
                had
            }
            Words::Spilled(words) => {
                if w >= words.len() {
                    return false;
                }
                let had = words[w] & (1 << b) != 0;
                words[w] &= !(1 << b);
                had
            }
        };
        self.canonicalize();
        had
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, v: VarId) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        let slice = self.word_slice();
        w < slice.len() && slice[w] & (1 << b) != 0
    }

    /// Number of variables in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.word_slice()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// `true` iff the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.word_slice().is_empty()
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &VarSet) -> VarSet {
        if let (Words::Inline(a), Words::Inline(b)) = (&self.words, &other.words) {
            return VarSet::from_word(a | b);
        }
        let (x, y) = (self.word_slice(), other.word_slice());
        let words = (0..x.len().max(y.len()))
            .map(|i| x.get(i).copied().unwrap_or(0) | y.get(i).copied().unwrap_or(0))
            .collect();
        VarSet::from_words(words)
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: &VarSet) -> VarSet {
        if let (Words::Inline(a), Words::Inline(b)) = (&self.words, &other.words) {
            return VarSet::from_word(a & b);
        }
        let (x, y) = (self.word_slice(), other.word_slice());
        let words = x.iter().zip(y.iter()).map(|(a, b)| a & b).collect();
        VarSet::from_words(words)
    }

    /// Set difference `self − other`.
    #[must_use]
    pub fn difference(&self, other: &VarSet) -> VarSet {
        if let (Words::Inline(a), Words::Inline(b)) = (&self.words, &other.words) {
            return VarSet::from_word(a & !b);
        }
        let (x, y) = (self.word_slice(), other.word_slice());
        let words = x
            .iter()
            .enumerate()
            .map(|(i, a)| a & !y.get(i).copied().unwrap_or(0))
            .collect();
        VarSet::from_words(words)
    }

    /// Symmetric difference.
    #[must_use]
    pub fn symmetric_difference(&self, other: &VarSet) -> VarSet {
        if let (Words::Inline(a), Words::Inline(b)) = (&self.words, &other.words) {
            return VarSet::from_word(a ^ b);
        }
        let (x, y) = (self.word_slice(), other.word_slice());
        let words = (0..x.len().max(y.len()))
            .map(|i| x.get(i).copied().unwrap_or(0) ^ y.get(i).copied().unwrap_or(0))
            .collect();
        VarSet::from_words(words)
    }

    /// `true` iff `self ⊆ other`.
    #[must_use]
    pub fn is_subset(&self, other: &VarSet) -> bool {
        if let (Words::Inline(a), Words::Inline(b)) = (&self.words, &other.words) {
            return a & !b == 0;
        }
        let o = other.word_slice();
        self.word_slice().iter().enumerate().all(|(i, w)| {
            let b = o.get(i).copied().unwrap_or(0);
            w & !b == 0
        })
    }

    /// `true` iff `self ⊇ other`.
    #[must_use]
    pub fn is_superset(&self, other: &VarSet) -> bool {
        other.is_subset(self)
    }

    /// `true` iff the sets share no variable.
    #[must_use]
    pub fn is_disjoint(&self, other: &VarSet) -> bool {
        if let (Words::Inline(a), Words::Inline(b)) = (&self.words, &other.words) {
            return a & b == 0;
        }
        self.word_slice()
            .iter()
            .zip(other.word_slice().iter())
            .all(|(a, b)| a & b == 0)
    }

    /// `true` iff the sets intersect.
    #[must_use]
    pub fn intersects(&self, other: &VarSet) -> bool {
        !self.is_disjoint(other)
    }

    /// Iterates the variables in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        self.word_slice().iter().enumerate().flat_map(|(wi, &w)| {
            let base = (wi * 64) as u32;
            BitIter { word: w, base }
        })
    }

    /// The smallest variable, if any.
    ///
    /// Named `first` (not `min`) to avoid clashing with `Ord::min`.
    #[must_use]
    pub fn first(&self) -> Option<VarId> {
        self.iter().next()
    }

    /// Collects into a sorted `Vec<VarId>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<VarId> {
        self.iter().collect()
    }

    /// Returns the set with `v` inserted (functional update).
    #[must_use]
    pub fn with(&self, v: VarId) -> VarSet {
        let mut s = self.clone();
        s.insert(v);
        s
    }

    /// Returns the set with `v` removed (functional update).
    #[must_use]
    pub fn without(&self, v: VarId) -> VarSet {
        let mut s = self.clone();
        s.remove(v);
        s
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = VarId;
    fn next(&mut self) -> Option<VarId> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(VarId((self.base + tz) as u16))
    }
}

impl FromIterator<VarId> for VarSet {
    fn from_iter<I: IntoIterator<Item = VarId>>(iter: I) -> Self {
        let mut s = VarSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl<'a> IntoIterator for &'a VarSet {
    type Item = VarId;
    type IntoIter = Box<dyn Iterator<Item = VarId> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(feature = "json")]
mod json {
    use super::{VarId, VarSet};
    use qhorn_json::{FromJson, Json, JsonError, ToJson};

    impl ToJson for VarId {
        fn to_json(&self) -> Json {
            Json::U64(u64::from(self.0))
        }
    }

    impl FromJson for VarId {
        fn from_json(j: &Json) -> Result<Self, JsonError> {
            u16::from_json(j).map(VarId)
        }
    }

    impl ToJson for VarSet {
        fn to_json(&self) -> Json {
            Json::object([("words", self.word_slice().to_vec().to_json())])
        }
    }

    impl FromJson for VarSet {
        fn from_json(j: &Json) -> Result<Self, JsonError> {
            let words = Vec::<u64>::from_json(j.field("words")?)?;
            // Re-canonicalize: payloads may carry zero words.
            Ok(VarSet::from_words(words))
        }
    }
}

/// Convenience macro: `varset![1, 4, 5]` builds `{x1, x4, x5}` using the
/// paper's 1-based naming.
#[macro_export]
macro_rules! varset {
    ($($i:expr),* $(,)?) => {
        $crate::VarSet::from_one_based([$($i),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_based_round_trip() {
        let v = VarId::from_one_based(4);
        assert_eq!(v.index(), 3);
        assert_eq!(v.one_based(), 4);
        assert_eq!(v.to_string(), "x4");
    }

    #[test]
    #[should_panic(expected = "one-based")]
    fn one_based_zero_panics() {
        let _ = VarId::from_one_based(0);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = VarSet::new();
        assert!(s.insert(VarId(3)));
        assert!(!s.insert(VarId(3)));
        assert!(s.contains(VarId(3)));
        assert!(!s.contains(VarId(2)));
        assert!(s.remove(VarId(3)));
        assert!(!s.remove(VarId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn canonical_after_remove_high_bit() {
        let mut s = VarSet::new();
        s.insert(VarId(100));
        s.remove(VarId(100));
        assert_eq!(s, VarSet::new());
        let mut h = std::collections::HashSet::new();
        h.insert(s);
        h.insert(VarSet::new());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn set_operations() {
        let a = VarSet::from_indices([0, 1, 2, 70]);
        let b = VarSet::from_indices([2, 3, 70]);
        assert_eq!(a.union(&b), VarSet::from_indices([0, 1, 2, 3, 70]));
        assert_eq!(a.intersection(&b), VarSet::from_indices([2, 70]));
        assert_eq!(a.difference(&b), VarSet::from_indices([0, 1]));
        assert_eq!(a.symmetric_difference(&b), VarSet::from_indices([0, 1, 3]));
    }

    #[test]
    fn subset_disjoint() {
        let a = VarSet::from_indices([1, 2]);
        let b = VarSet::from_indices([1, 2, 3]);
        let c = VarSet::from_indices([5, 64]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(b.is_superset(&a));
        assert!(a.is_disjoint(&c));
        assert!(a.intersects(&b));
        assert!(VarSet::new().is_subset(&a));
        assert!(VarSet::new().is_disjoint(&a));
    }

    #[test]
    fn subset_across_word_lengths() {
        let small = VarSet::from_indices([1]);
        let big = VarSet::from_indices([1, 130]);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(big.is_superset(&small));
    }

    #[test]
    fn iteration_order_and_len() {
        let s = VarSet::from_indices([65, 0, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.to_vec(),
            vec![VarId(0), VarId(3), VarId(65)],
            "iteration is in increasing order"
        );
        assert_eq!(s.first(), Some(VarId(0)));
    }

    #[test]
    fn full_universe() {
        let s = VarSet::full(130);
        assert_eq!(s.len(), 130);
        assert!(s.contains(VarId(129)));
        assert!(!s.contains(VarId(130)));
        assert_eq!(VarSet::full(64).len(), 64);
        assert_eq!(VarSet::full(64).as_word(), Some(u64::MAX));
        assert_eq!(VarSet::full(0), VarSet::new());
    }

    #[test]
    fn display_uses_one_based_names() {
        let s = varset![1, 4, 5];
        assert_eq!(s.to_string(), "{x1, x4, x5}");
    }

    #[test]
    fn functional_updates() {
        let s = varset![1, 2];
        assert_eq!(s.with(VarId::from_one_based(3)), varset![1, 2, 3]);
        assert_eq!(s.without(VarId::from_one_based(2)), varset![1]);
        assert_eq!(s, varset![1, 2], "original untouched");
    }

    #[test]
    fn inline_word_round_trip() {
        // Sets over ≤ 64 variables stay inline through every operation.
        let a = VarSet::from_indices([0, 5, 63]);
        assert_eq!(a.as_word(), Some(1 | (1 << 5) | (1 << 63)));
        assert_eq!(VarSet::from_word(a.as_word().unwrap()), a);
        assert!(a.union(&varset![2]).as_word().is_some());
        assert!(a.difference(&varset![1]).as_word().is_some());
        assert_eq!(VarSet::new().as_word(), Some(0));
    }

    #[test]
    fn spill_and_return_inline() {
        // Growing past index 63 spills; removing the high bit re-inlines.
        let mut s = VarSet::from_indices([3, 10]);
        assert!(s.as_word().is_some());
        s.insert(VarId(90));
        assert_eq!(s.as_word(), None);
        assert_eq!(s.len(), 3);
        assert!(s.contains(VarId(90)));
        s.remove(VarId(90));
        assert_eq!(s.as_word(), Some((1 << 3) | (1 << 10)));
        assert_eq!(s, VarSet::from_indices([3, 10]));
    }

    #[test]
    fn ordering_matches_word_lexicographic() {
        // The order must be stable across the inline/spilled boundary:
        // lexicographic on canonical word sequences, exactly as the old
        // Vec<u64> representation derived.
        let mut sets = [
            VarSet::new(),
            VarSet::from_indices([0]),
            VarSet::from_indices([63]),
            VarSet::from_indices([0, 64]),
            VarSet::from_indices([64]),
            VarSet::from_indices([1, 200]),
        ];
        sets.sort();
        for pair in sets.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        // Mixed-representation comparisons agree with set semantics.
        assert_ne!(VarSet::from_indices([0]), VarSet::from_indices([0, 64]));
        assert_eq!(VarSet::from_words(vec![5, 0, 0]), VarSet::from_word(5));
    }

    #[test]
    fn from_words_canonicalizes() {
        assert_eq!(VarSet::from_words(vec![]), VarSet::new());
        assert_eq!(VarSet::from_words(vec![0, 0]), VarSet::new());
        let spilled = VarSet::from_words(vec![1, 2]);
        assert_eq!(spilled.as_word(), None);
        assert_eq!(spilled, VarSet::from_indices([0, 65]));
    }
}
