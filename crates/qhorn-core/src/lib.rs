//! # qhorn-core
//!
//! A faithful implementation of *"Learning and Verifying Quantified Boolean
//! Queries by Example"* (Abouzied, Angluin, Papadimitriou, Hellerstein,
//! Silberschatz — PODS 2013).
//!
//! Quantified Boolean queries evaluate propositions over *sets* of tuples:
//! an object (e.g. a box of chocolates) is an answer iff every quantified
//! expression holds over its tuple set. The paper studies **qhorn** —
//! conjunctions of quantified Horn expressions with guarantee clauses — and
//! shows that two subclasses can be learned exactly from polynomially many
//! *membership questions* (example objects the user labels as answers or
//! non-answers), and verified with O(k) questions.
//!
//! This crate provides:
//!
//! * the Boolean substrate: [`VarId`], [`VarSet`], [`BoolTuple`], [`Obj`],
//!   and Boolean-lattice utilities ([`lattice`]);
//! * the evaluation [`kernel`]: one compiled word-parallel evaluator
//!   (violation/witness check masks, columnar matrices, subset-space
//!   enumeration) that every layer — oracles, learners, verifier,
//!   execution engine — routes "does `S` satisfy `Q`?" through;
//! * the query model: [`Query`], [`Expr`], evaluation, class membership
//!   ([`query::classes`]), normalization ([`NormalForm`]) and semantic
//!   equivalence ([`query::equiv`]);
//! * the learning algorithms: [`learn::learn_qhorn1`] (Thm 3.1,
//!   O(n lg n) questions) and [`learn::learn_role_preserving`]
//!   (Thms 3.5/3.8, O(n^{θ+1} + k·n lg n) questions);
//! * the verifier: [`verify::VerificationSet`] (Fig. 6, O(k) questions);
//! * oracles simulating users ([`oracle`]).
//!
//! ## Quickstart
//!
//! ```
//! use qhorn_core::{learn::learn_qhorn1, oracle::QueryOracle, Expr, Query, VarId, varset};
//!
//! // The user's hidden intent: ∀x1x2 → x3  ∃x4  (a qhorn-1 query).
//! let target = Query::new(4, [
//!     Expr::universal(varset![1, 2], VarId::from_one_based(3)),
//!     Expr::conj(varset![4]),
//! ]).unwrap();
//!
//! // A simulated user answers membership questions about the target.
//! let mut user = QueryOracle::new(target.clone());
//! let outcome = learn_qhorn1(4, &mut user, &Default::default()).unwrap();
//!
//! // The learner recovers a semantically equivalent query.
//! assert!(qhorn_core::query::equiv::equivalent(outcome.query(), &target));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod kernel;
pub mod lattice;
pub mod learn;
pub mod object;
pub mod oracle;
pub mod query;
pub mod tuple;
pub mod var;
pub mod verify;

pub use object::{Obj, Response};
pub use oracle::{CountingOracle, MembershipOracle, OracleStats, QueryOracle};
pub use query::{Expr, NormalForm, Query, QueryClass};
pub use tuple::BoolTuple;
pub use var::{VarId, VarSet};
