//! Query learning from membership questions (§3).
//!
//! Two exact learners:
//!
//! * [`learn_qhorn1`] — §3.1, Theorem 3.1: learns any complete qhorn-1
//!   query with O(n lg n) membership questions in polynomial time.
//! * [`learn_role_preserving`] — §3.2, Theorems 3.5 and 3.8: learns any
//!   complete role-preserving qhorn query with O(n^{θ+1} + k·n lg n)
//!   membership questions, where k is query size and θ causal density.
//!
//! Both assume the target is **complete** (every variable occurs in some
//! expression; see DESIGN.md §1). [`free_vars`] lifts the assumption at a
//! cost of n extra questions. [`constant_width`] implements the
//! tuple-budgeted learner of Lemma 3.4, [`revision`] and [`pac`] the
//! future-work extensions sketched in §6.

pub mod constant_width;
pub mod existential;
pub mod free_vars;
pub mod gethead;
pub mod noise;
pub mod pac;
pub mod prune;
pub mod qhorn1;
pub mod questions;
pub mod revision;
pub mod role_preserving;
pub mod search;
pub mod universal;
pub mod validate;

pub use qhorn1::learn_qhorn1;
pub use role_preserving::learn_role_preserving;

use crate::object::{Obj, Response};
use crate::oracle::MembershipOracle;
use crate::query::Query;
use std::collections::BTreeMap;
use std::fmt;

/// Tuning knobs for the learners.
#[derive(Clone, Debug, Default)]
pub struct LearnOptions {
    /// Spend n extra single-tuple questions up front detecting variables
    /// the target query does not mention, then learn over the constrained
    /// subspace (lifts the completeness assumption). Default `false`.
    pub detect_free_variables: bool,
    /// Hard question budget; learning aborts with
    /// [`LearnError::BudgetExceeded`] once reached. Default `None`.
    pub max_questions: Option<usize>,
}

/// Which subtask of the learning algorithm asked a question — the paper
/// analyzes each subtask's question count separately (Lemmas 3.2, 3.3,
/// Thms 3.5, 3.8).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Phase {
    /// Free-variable scan (extension).
    FreeVariableScan,
    /// §3.1.1 / §3.2.1: is each variable a universal head?
    ClassifyHeads,
    /// §3.2.1: is a universal head bodyless?
    BodylessCheck,
    /// §3.1.2 / §3.2.1: universal dependence questions locating bodies.
    UniversalBodies,
    /// §3.1.3: existential independence questions.
    ExistentialDependence,
    /// §3.1.3: independence matrix questions (GetHead).
    MatrixQuestions,
    /// §3.2.2: lattice search for existential conjunctions.
    ExistentialLattice,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::FreeVariableScan => "free-variable scan",
            Phase::ClassifyHeads => "classify heads",
            Phase::BodylessCheck => "bodyless check",
            Phase::UniversalBodies => "universal bodies",
            Phase::ExistentialDependence => "existential dependence",
            Phase::MatrixQuestions => "matrix questions",
            Phase::ExistentialLattice => "existential lattice",
        };
        f.write_str(s)
    }
}

/// Question accounting per learning phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LearnStats {
    /// Total membership questions asked.
    pub questions: usize,
    /// Total tuples across all questions.
    pub tuples: usize,
    /// Largest question, in tuples.
    pub max_tuples_per_question: usize,
    /// Questions per phase.
    pub by_phase: BTreeMap<Phase, usize>,
    /// Dialogue-clock nanoseconds spent in each phase. Measured on the
    /// learner's own thread, so for interactive sessions this includes
    /// the time spent waiting for the oracle (the user's think time) —
    /// which is exactly what a per-session timeline wants to show.
    pub nanos_by_phase: BTreeMap<Phase, u64>,
}

impl LearnStats {
    /// Questions asked in one phase.
    #[must_use]
    pub fn phase(&self, p: Phase) -> usize {
        self.by_phase.get(&p).copied().unwrap_or(0)
    }

    /// Dialogue-clock nanoseconds spent in one phase.
    #[must_use]
    pub fn phase_nanos(&self, p: Phase) -> u64 {
        self.nanos_by_phase.get(&p).copied().unwrap_or(0)
    }
}

/// A successfully learned query plus its cost accounting.
#[derive(Clone, Debug)]
pub struct LearnOutcome {
    query: Query,
    stats: LearnStats,
}

impl LearnOutcome {
    pub(crate) fn new(query: Query, stats: LearnStats) -> Self {
        LearnOutcome { query, stats }
    }

    /// The learned query (semantically equal to the target for oracles
    /// consistent with the promised class).
    #[must_use]
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Question accounting.
    #[must_use]
    pub fn stats(&self) -> &LearnStats {
        &self.stats
    }

    /// Destructures the outcome.
    #[must_use]
    pub fn into_parts(self) -> (Query, LearnStats) {
        (self.query, self.stats)
    }
}

/// Learning failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LearnError {
    /// The question budget ([`LearnOptions::max_questions`]) was exhausted.
    BudgetExceeded {
        /// Questions asked before aborting.
        asked: usize,
    },
    /// The oracle's responses are not consistent with any query in the
    /// promised class (noisy user or out-of-class target).
    InconsistentOracle {
        /// Human-readable description of the contradiction.
        detail: String,
    },
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::BudgetExceeded { asked } => {
                write!(f, "question budget exhausted after {asked} questions")
            }
            LearnError::InconsistentOracle { detail } => {
                write!(
                    f,
                    "oracle responses inconsistent with the promised query class: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for LearnError {}

/// Internal oracle wrapper: per-phase accounting plus budget enforcement.
pub(crate) struct Asker<'a, O: MembershipOracle + ?Sized> {
    oracle: &'a mut O,
    stats: LearnStats,
    phase: Phase,
    phase_entered: std::time::Instant,
    budget: Option<usize>,
}

impl<'a, O: MembershipOracle + ?Sized> Asker<'a, O> {
    pub(crate) fn new(oracle: &'a mut O, opts: &LearnOptions) -> Self {
        Asker {
            oracle,
            stats: LearnStats::default(),
            phase: Phase::ClassifyHeads,
            phase_entered: std::time::Instant::now(),
            budget: opts.max_questions,
        }
    }

    /// Credits the dialogue clock since the last roll to the current phase.
    fn roll_phase_clock(&mut self) {
        let now = std::time::Instant::now();
        let elapsed = now.duration_since(self.phase_entered);
        self.phase_entered = now;
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        if nanos > 0 {
            let slot = self.stats.nanos_by_phase.entry(self.phase).or_insert(0);
            *slot = slot.saturating_add(nanos);
        }
    }

    pub(crate) fn set_phase(&mut self, phase: Phase) {
        if phase != self.phase {
            self.roll_phase_clock();
            self.phase = phase;
        }
    }

    pub(crate) fn ask(&mut self, q: &Obj) -> Result<Response, LearnError> {
        if let Some(b) = self.budget {
            if self.stats.questions >= b {
                return Err(LearnError::BudgetExceeded {
                    asked: self.stats.questions,
                });
            }
        }
        self.stats.questions += 1;
        self.stats.tuples += q.len();
        self.stats.max_tuples_per_question = self.stats.max_tuples_per_question.max(q.len());
        *self.stats.by_phase.entry(self.phase).or_insert(0) += 1;
        Ok(self.oracle.ask(q))
    }

    /// `true` iff the oracle labels `q` an answer.
    pub(crate) fn is_answer(&mut self, q: &Obj) -> Result<bool, LearnError> {
        Ok(self.ask(q)?.is_answer())
    }

    pub(crate) fn into_stats(mut self) -> LearnStats {
        self.roll_phase_clock();
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::QueryOracle;
    use crate::query::Expr;
    use crate::varset;

    #[test]
    fn asker_counts_by_phase_and_enforces_budget() {
        let target = Query::new(2, [Expr::conj(varset![1, 2])]).unwrap();
        let mut oracle = QueryOracle::new(target);
        let opts = LearnOptions {
            max_questions: Some(2),
            ..Default::default()
        };
        let mut asker = Asker::new(&mut oracle, &opts);
        asker.set_phase(Phase::ClassifyHeads);
        asker.ask(&Obj::from_bits("11")).unwrap();
        asker.set_phase(Phase::UniversalBodies);
        asker.ask(&Obj::from_bits("11 01")).unwrap();
        let err = asker.ask(&Obj::from_bits("11")).unwrap_err();
        assert_eq!(err, LearnError::BudgetExceeded { asked: 2 });
        let stats = asker.into_stats();
        assert_eq!(stats.questions, 2);
        assert_eq!(stats.tuples, 3);
        assert_eq!(stats.phase(Phase::ClassifyHeads), 1);
        assert_eq!(stats.phase(Phase::UniversalBodies), 1);
        assert_eq!(stats.phase(Phase::MatrixQuestions), 0);
        // The dialogue clock charged time to the phases that ran; the
        // final phase is rolled up by `into_stats`.
        let total: u64 = stats.nanos_by_phase.values().sum();
        assert!(total > 0, "phase clock accrued nothing");
        assert_eq!(stats.phase_nanos(Phase::MatrixQuestions), 0);
    }

    #[test]
    fn error_display() {
        let e = LearnError::BudgetExceeded { asked: 7 };
        assert!(e.to_string().contains('7'));
        let e = LearnError::InconsistentOracle { detail: "x".into() };
        assert!(e.to_string().contains("inconsistent"));
    }
}
