//! Constructors for the membership-question shapes the paper defines.
//!
//! Every learner question is one of a handful of two-tuple or tuple-family
//! patterns; centralizing the constructors keeps the learners readable and
//! lets tests pin the exact shapes the paper prescribes.

use crate::object::Obj;
use crate::tuple::BoolTuple;
use crate::var::{VarId, VarSet};

/// §3.1.1 head-classification question for variable `v`:
/// `{1^n, the tuple with only v false}`.
///
/// Non-answer ⟺ `v` is a universal head variable (all potential body
/// variables are true, other heads are neutralized true, yet `v` may be
/// false only if no universal expression forces it).
#[must_use]
pub fn classify_head(n: u16, v: VarId) -> Obj {
    let top = BoolTuple::all_true(n);
    let probe = top.with(v, false);
    Obj::new(n, [top, probe])
}

/// Def. 3.1 universal dependence question on head `h` and variable set `vs`:
/// `{1^n, the tuple with h and vs false, everything else true}`.
///
/// Answer ⟺ some body variable of `h` lies in `vs` (the body is no longer
/// fully true, so `h` may be false).
#[must_use]
pub fn universal_dependence(n: u16, h: VarId, vs: &VarSet) -> Obj {
    let top = BoolTuple::all_true(n);
    let probe = top.with_all(vs, false).with(h, false);
    Obj::new(n, [top, probe])
}

/// §3.2.1 bodyless-check question for head `h`: `{1^n, the tuple with h and
/// all non-head variables false, other heads true}`.
///
/// Non-answer ⟺ `h` is bodyless (`∀h` is in the query): every non-empty
/// body is broken by the probe tuple, so only `∀h` can reject it.
#[must_use]
pub fn bodyless_check(n: u16, h: VarId, non_heads: &VarSet) -> Obj {
    let top = BoolTuple::all_true(n);
    let probe = top.with_all(non_heads, false).with(h, false);
    Obj::new(n, [top, probe])
}

/// §3.2.1 body-search question for head `h`: `{1^n, the tuple whose
/// non-head variables are exactly `true_non_heads`, h false, other heads
/// true}` — the lattice probe of Fig. 5.
///
/// Non-answer ⟺ some body of `h` is contained in `true_non_heads`.
#[must_use]
pub fn body_probe(n: u16, h: VarId, non_heads: &VarSet, true_non_heads: &VarSet) -> Obj {
    debug_assert!(true_non_heads.is_subset(non_heads));
    let top = BoolTuple::all_true(n);
    let probe = top
        .with_all(&non_heads.difference(true_non_heads), false)
        .with(h, false);
    Obj::new(n, [top, probe])
}

/// Def. 3.2 existential independence question on disjoint variable sets
/// `xs` and `ys`: `{tuple with xs false, tuple with ys false}` (all other
/// variables true).
///
/// Non-answer ⟺ the sets *depend* on each other: some conjunction of the
/// target contains a variable of `xs` and a variable of `ys` (or spans
/// both probes).
#[must_use]
pub fn existential_independence(n: u16, xs: &VarSet, ys: &VarSet) -> Obj {
    debug_assert!(
        xs.is_disjoint(ys),
        "independence question requires disjoint sets"
    );
    let top = BoolTuple::all_true(n);
    Obj::new(n, [top.with_all(xs, false), top.with_all(ys, false)])
}

/// Def. 3.3 independence matrix question on variable set `ds`: one tuple
/// per `d ∈ ds` with only `d` false.
///
/// Within the dependents of a pure existential part, answer ⟺ at least two
/// existential head variables lie in `ds` (Lemma 3.3).
#[must_use]
pub fn matrix(n: u16, ds: &VarSet) -> Obj {
    let top = BoolTuple::all_true(n);
    Obj::new(n, ds.iter().map(|d| top.with(d, false)))
}

/// Extension (DESIGN.md): free-variable probe — the single-tuple question
/// `{tuple with only v false}`. Answer ⟺ `v` occurs in no expression of
/// the target query.
#[must_use]
pub fn free_var_probe(n: u16, v: VarId) -> Obj {
    Obj::new(n, [BoolTuple::all_true(n).with(v, false)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    #[test]
    fn classify_head_shape_matches_section_3_1_1() {
        // "we ask the user if the set {111, 011} is an answer" (for x1, n=3).
        let q = classify_head(3, v(1));
        assert_eq!(q.to_string(), "{011, 111}");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn universal_dependence_shape() {
        // h = x1, V = {x2, x3} over 4 vars: {1111, 0001}.
        let q = universal_dependence(4, v(1), &varset![2, 3]);
        assert!(q.contains(&BoolTuple::from_bits("1111")));
        assert!(q.contains(&BoolTuple::from_bits("0001")));
    }

    #[test]
    fn matrix_shape_matches_def_3_3() {
        // D = {x2, x3, x4} over 4 vars: {1011, 1101, 1110}.
        let q = matrix(4, &varset![2, 3, 4]);
        assert_eq!(q.len(), 3);
        for bits in ["1011", "1101", "1110"] {
            assert!(q.contains(&BoolTuple::from_bits(bits)), "missing {bits}");
        }
    }

    #[test]
    fn independence_shape() {
        let q = existential_independence(4, &varset![1], &varset![3, 4]);
        assert!(q.contains(&BoolTuple::from_bits("0111")));
        assert!(q.contains(&BoolTuple::from_bits("1100")));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn bodyless_shape() {
        // heads {x1, x4}, non-heads {x2, x3}; checking h = x1:
        // {1111, 0001}.
        let q = bodyless_check(4, v(1), &varset![2, 3]);
        assert!(q.contains(&BoolTuple::from_bits("0001")));
    }

    #[test]
    fn body_probe_shape() {
        // non-heads {x1..x4}, heads {x5, x6}; probing h=x5 with true set
        // {x1, x4}: probe tuple 100101.
        let q = body_probe(6, v(5), &varset![1, 2, 3, 4], &varset![1, 4]);
        assert!(q.contains(&BoolTuple::from_bits("100101")));
        assert!(q.contains(&BoolTuple::from_bits("111111")));
    }

    #[test]
    fn free_var_probe_is_single_tuple() {
        let q = free_var_probe(3, v(2));
        assert_eq!(q.len(), 1);
        assert!(q.contains(&BoolTuple::from_bits("101")));
    }
}
