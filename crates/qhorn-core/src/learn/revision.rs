//! Query revision — the future-work direction of §6: given a query that is
//! *close* to the user's intent, determine the intent with few questions,
//! polynomial in the distance between the two queries.
//!
//! The paper proposes the Boolean lattice as the natural metric: "the
//! distance between the distinguishing tuples of the given and intended
//! queries". [`distance`] implements that metric (symmetric difference of
//! the existential and universal distinguishing-tuple sets).
//!
//! [`revise`] implements a verify-then-relearn strategy:
//!
//! 1. run the O(k) verification set of the given query — if the user
//!    agrees everywhere, the given query *is* the intent (Thm 4.2) and we
//!    are done after O(k) questions;
//! 2. otherwise fall back to the full role-preserving learner, replaying
//!    the verification transcript so agreeing questions are not re-asked.
//!
//! This is the baseline the paper's open problem asks to beat (distance-
//! parameterized revision); the `exp_revision` experiment measures how the
//! question count varies with [`distance`].

use super::role_preserving::learn_role_preserving;
use super::{LearnError, LearnOptions, LearnOutcome};
use crate::oracle::{MembershipOracle, ReplayOracle, TranscriptOracle};
use crate::query::classes::ClassError;
use crate::query::Query;
use crate::verify::VerificationSet;

/// The lattice distance between two queries: the size of the symmetric
/// difference of their existential distinguishing tuples plus that of
/// their dominant universal expressions (0 iff semantically equivalent,
/// Prop. 4.1).
///
/// Universal expressions are compared as `(body, head)` pairs rather than
/// raw distinguishing tuples: the tuple sets the head false among the
/// other heads, so two queries with different head *sets* (e.g.
/// `∀x3 → x1` vs `∀x3 → x4` over four variables) can collide on raw
/// tuples while being inequivalent — proposition 4.1 implicitly pairs each
/// tuple with the query's head classification.
#[must_use]
pub fn distance(a: &Query, b: &Query) -> usize {
    assert_eq!(a.arity(), b.arity(), "distance requires equal arity");
    let (na, nb) = (a.normal_form(), b.normal_form());
    let ea = na.existential_distinguishing_tuples();
    let eb = nb.existential_distinguishing_tuples();
    let ua = na.universals();
    let ub = nb.universals();
    ea.symmetric_difference(&eb).count() + ua.symmetric_difference(ub).count()
}

/// Outcome of a revision attempt.
#[derive(Clone, Debug)]
pub struct RevisionOutcome {
    /// The revised query (the given one if verification succeeded).
    pub query: Query,
    /// Questions spent verifying.
    pub verification_questions: usize,
    /// Questions spent re-learning (0 when verification succeeded).
    pub learning_questions: usize,
    /// Whether the given query already matched the intent.
    pub verified_as_is: bool,
}

/// Errors from [`revise`].
#[derive(Debug)]
pub enum RevisionError {
    /// The given query is outside role-preserving qhorn.
    OutOfClass(ClassError),
    /// Relearning failed.
    Learn(LearnError),
}

impl std::fmt::Display for RevisionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RevisionError::OutOfClass(e) => write!(f, "given query is not role-preserving: {e}"),
            RevisionError::Learn(e) => write!(f, "revision relearning failed: {e}"),
        }
    }
}

impl std::error::Error for RevisionError {}

/// Revises `given` against the user's responses: verification first, full
/// relearning (with transcript replay) only on disagreement.
pub fn revise<O: MembershipOracle + ?Sized>(
    given: &Query,
    oracle: &mut O,
    opts: &LearnOptions,
) -> Result<RevisionOutcome, RevisionError> {
    let set = VerificationSet::build(given).map_err(RevisionError::OutOfClass)?;
    let mut transcript_oracle = TranscriptOracle::new(&mut *oracle);
    let outcome = set.verify(&mut transcript_oracle);
    let transcript = transcript_oracle.into_transcript();
    let verification_questions = outcome.questions();
    if outcome.is_verified() {
        return Ok(RevisionOutcome {
            query: given.clone(),
            verification_questions,
            learning_questions: 0,
            verified_as_is: true,
        });
    }
    // Relearn, replaying what the verification already revealed.
    let mut replay = ReplayOracle::new(&mut *oracle, transcript);
    let learned: LearnOutcome =
        learn_role_preserving(given.arity(), &mut replay, opts).map_err(RevisionError::Learn)?;
    let fresh = replay.fresh();
    let (query, _) = learned.into_parts();
    Ok(RevisionOutcome {
        query,
        verification_questions,
        learning_questions: fresh,
        verified_as_is: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::QueryOracle;
    use crate::query::equiv::equivalent;
    use crate::query::Expr;
    use crate::var::VarId;
    use crate::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    #[test]
    fn distance_zero_iff_equivalent() {
        let a = Query::new(
            3,
            [Expr::universal(varset![1], v(3)), Expr::conj(varset![1, 2])],
        )
        .unwrap();
        let b = Query::new(
            3,
            [
                Expr::universal(varset![1], v(3)),
                Expr::universal(varset![1, 2], v(3)),
                Expr::conj(varset![1, 2, 3]),
            ],
        )
        .unwrap();
        assert_eq!(distance(&a, &b), 0);
        let c = Query::new(3, [Expr::conj(varset![1, 2, 3])]).unwrap();
        assert!(distance(&a, &c) > 0);
    }

    #[test]
    fn distance_is_symmetric_and_triangle_ish() {
        let qs = crate::query::generate::enumerate_role_preserving(2, true);
        for a in &qs {
            for b in &qs {
                assert_eq!(distance(a, b), distance(b, a));
            }
        }
    }

    #[test]
    fn correct_given_query_verifies_in_ok_questions() {
        let target = crate::query::tests::paper_example();
        let mut user = QueryOracle::new(target.clone());
        let out = revise(&target, &mut user, &LearnOptions::default()).unwrap();
        assert!(out.verified_as_is);
        assert_eq!(out.learning_questions, 0);
        assert!(equivalent(&out.query, &target));
    }

    #[test]
    fn wrong_given_query_is_repaired() {
        let target = crate::query::tests::paper_example();
        // Drop one conjunction from the given query.
        let given = Query::new(
            6,
            [
                Expr::universal(varset![1, 4], v(5)),
                Expr::universal(varset![3, 4], v(5)),
                Expr::universal(varset![1, 2], v(6)),
                Expr::conj(varset![1, 2, 3]),
                Expr::conj(varset![2, 3, 4]),
                Expr::conj(varset![1, 2, 5]),
            ],
        )
        .unwrap();
        assert!(distance(&given, &target) > 0);
        let mut user = QueryOracle::new(target.clone());
        let out = revise(&given, &mut user, &LearnOptions::default()).unwrap();
        assert!(!out.verified_as_is);
        assert!(equivalent(&out.query, &target));
        assert!(out.learning_questions > 0);
    }

    #[test]
    fn out_of_class_given_query_rejected() {
        let alias = Query::new(
            2,
            [
                Expr::universal(varset![1], v(2)),
                Expr::universal(varset![2], v(1)),
            ],
        )
        .unwrap();
        let mut user = QueryOracle::new(Query::empty(2));
        assert!(matches!(
            revise(&alias, &mut user, &LearnOptions::default()),
            Err(RevisionError::OutOfClass(_))
        ));
    }
}
