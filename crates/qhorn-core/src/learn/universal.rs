//! Learning the universal Horn expressions of a role-preserving query
//! (§3.2.1, Theorem 3.5): O(n^θ) questions per head, O(n^{θ+1}) total.
//!
//! For each universal head `h` (found as in §3.1.1) the learner walks the
//! Boolean lattice over the *non-head* variables with `h` pinned false and
//! the other heads pinned true (Fig. 5). A probe tuple is a non-answer iff
//! its true set contains a complete body of `h`; the **dominant** bodies
//! are exactly the minimal true sets of that monotone predicate:
//!
//! 1. find one body by shrinking from the full non-head set (Algorithm 6 —
//!    n questions);
//! 2. every further dominant body must miss at least one variable of each
//!    known body, so it lives under a **search root** that sets one
//!    variable per known body to false; probe each root and minimize
//!    within it when it contains a body (Fig. 5's `|B1|×…×|Bj|` roots).

use super::questions;
use super::{Asker, LearnError, Phase};
use crate::lattice::choice_product;
use crate::oracle::MembershipOracle;
use crate::var::{VarId, VarSet};

/// Classifies every variable: `true` in the result iff it is a universal
/// head (§3.1.1 / §3.2.1 — one two-tuple question per variable).
pub(crate) fn classify_universal_heads<O: MembershipOracle + ?Sized>(
    n: u16,
    asker: &mut Asker<'_, O>,
) -> Result<VarSet, LearnError> {
    asker.set_phase(Phase::ClassifyHeads);
    let mut heads = VarSet::new();
    for i in 0..n {
        let v = VarId(i);
        if !asker.is_answer(&questions::classify_head(n, v))? {
            heads.insert(v);
        }
    }
    Ok(heads)
}

/// Learns all dominant universal Horn expressions of the target
/// (Theorem 3.5). Returns `(body, head)` pairs; bodyless heads contribute
/// `(∅, h)`.
pub(crate) fn learn_universal_horns<O: MembershipOracle + ?Sized>(
    n: u16,
    heads: &VarSet,
    asker: &mut Asker<'_, O>,
) -> Result<Vec<(VarSet, VarId)>, LearnError> {
    let non_heads = VarSet::full(n).difference(heads);
    let mut out = Vec::new();
    for h in heads.iter() {
        // Bodyless check (§3.2.1): all potential body variables false.
        asker.set_phase(Phase::BodylessCheck);
        if !asker.is_answer(&questions::bodyless_check(n, h, &non_heads))? {
            out.push((VarSet::new(), h));
            continue;
        }
        asker.set_phase(Phase::UniversalBodies);
        let bodies = learn_bodies_of_head(n, h, &non_heads, asker)?;
        for b in bodies {
            out.push((b, h));
        }
    }
    Ok(out)
}

/// All dominant (minimal) bodies of one head — the θ expressions of
/// Theorem 3.5.
fn learn_bodies_of_head<O: MembershipOracle + ?Sized>(
    n: u16,
    h: VarId,
    non_heads: &VarSet,
    asker: &mut Asker<'_, O>,
) -> Result<Vec<VarSet>, LearnError> {
    // The head classification already told us the full non-head set
    // contains a body (the classification probe *is* body_probe with the
    // full true set); minimize to get the first dominant body.
    let first = minimize_body(n, h, non_heads, non_heads, asker)?;
    let mut bodies = vec![first];

    // Search roots: one variable from each known body set to false.
    let mut cleared: Vec<VarSet> = Vec::new();
    'outer: loop {
        let choices: Vec<VarSet> = choice_product(&bodies).collect();
        for excluded in choices {
            let root = non_heads.difference(&excluded);
            if cleared.iter().any(|c| root.is_subset(c)) {
                continue; // known body-free region
            }
            if !asker.is_answer(&questions::body_probe(n, h, non_heads, &root))? {
                // Root contains a body: minimize within it. The new body
                // misses one variable of each known body, so it is new.
                let b = minimize_body(n, h, non_heads, &root, asker)?;
                debug_assert!(!bodies.contains(&b), "search roots exclude known bodies");
                bodies.push(b);
                continue 'outer; // roots depend on the body set — restart
            }
            cleared.push(root);
        }
        break;
    }
    Ok(bodies)
}

/// Algorithm 6 restricted to `start`: shrinks `start` to a minimal true
/// set of the body predicate — a dominant body of `h` contained in
/// `start`. Asks `|start|` questions.
///
/// Precondition: `start` contains at least one body (the probe on `start`
/// was a non-answer).
fn minimize_body<O: MembershipOracle + ?Sized>(
    n: u16,
    h: VarId,
    non_heads: &VarSet,
    start: &VarSet,
    asker: &mut Asker<'_, O>,
) -> Result<VarSet, LearnError> {
    let mut keep = start.clone();
    for x in start.to_vec() {
        let candidate = keep.without(x);
        if !asker.is_answer(&questions::body_probe(n, h, non_heads, &candidate))? {
            keep = candidate; // still contains a body without x
        }
    }
    Ok(keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::LearnOptions;
    use crate::oracle::{CountingOracle, QueryOracle};
    use crate::query::{Expr, Query};
    use crate::varset;
    use std::collections::BTreeSet;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    fn run(target: &Query) -> (VarSet, Vec<(VarSet, VarId)>) {
        let mut oracle = QueryOracle::new(target.clone());
        let opts = LearnOptions::default();
        let mut asker = Asker::new(&mut oracle, &opts);
        let heads = classify_universal_heads(target.arity(), &mut asker).unwrap();
        let horns = learn_universal_horns(target.arity(), &heads, &mut asker).unwrap();
        (heads, horns)
    }

    fn as_set(horns: Vec<(VarSet, VarId)>) -> BTreeSet<(VarSet, VarId)> {
        horns.into_iter().collect()
    }

    #[test]
    fn classifies_heads_of_paper_example() {
        let q = crate::query::tests::paper_example();
        let (heads, _) = run(&q);
        assert_eq!(heads, varset![5, 6]);
    }

    #[test]
    fn learns_both_bodies_of_x5() {
        // Fig. 5: x5 has dominant bodies {x1,x4} and {x3,x4}.
        let q = crate::query::tests::paper_example();
        let (_, horns) = run(&q);
        let expected: BTreeSet<(VarSet, VarId)> = [
            (varset![1, 4], v(5)),
            (varset![3, 4], v(5)),
            (varset![1, 2], v(6)),
        ]
        .into_iter()
        .collect();
        assert_eq!(as_set(horns), expected);
    }

    #[test]
    fn bodyless_head_detected() {
        let q = Query::new(
            3,
            [Expr::universal_bodyless(v(1)), Expr::conj(varset![2, 3])],
        )
        .unwrap();
        let (heads, horns) = run(&q);
        assert_eq!(heads, varset![1]);
        assert_eq!(as_set(horns), [(VarSet::new(), v(1))].into_iter().collect());
    }

    #[test]
    fn dominated_bodies_are_not_reported() {
        // ∀x1→x4 ∀x1x2→x4 (dominated) ∀x2x3→x4.
        let q = Query::new(
            4,
            [
                Expr::universal(varset![1], v(4)),
                Expr::universal(varset![1, 2], v(4)),
                Expr::universal(varset![2, 3], v(4)),
            ],
        )
        .unwrap();
        let (_, horns) = run(&q);
        let expected: BTreeSet<(VarSet, VarId)> = [(varset![1], v(4)), (varset![2, 3], v(4))]
            .into_iter()
            .collect();
        assert_eq!(as_set(horns), expected);
    }

    #[test]
    fn three_incomparable_bodies() {
        let q = Query::new(
            7,
            [
                Expr::universal(varset![1, 2], v(7)),
                Expr::universal(varset![3, 4], v(7)),
                Expr::universal(varset![5, 6], v(7)),
            ],
        )
        .unwrap();
        let (_, horns) = run(&q);
        assert_eq!(horns.len(), 3);
        let bodies: BTreeSet<VarSet> = horns.into_iter().map(|(b, _)| b).collect();
        assert!(bodies.contains(&varset![1, 2]));
        assert!(bodies.contains(&varset![3, 4]));
        assert!(bodies.contains(&varset![5, 6]));
    }

    #[test]
    fn overlapping_bodies_thm_3_6_family() {
        // The adversarial family of Thm 3.6 (n=12 body vars, θ=4):
        // ∀x1x3x5x9→h ∀x2x4x6x10→h ∀x7x8x11x12→h ∀x1x2x3x4x7x8x9x10x11→h.
        let h = v(13);
        let q = Query::new(
            13,
            [
                Expr::universal(varset![1, 3, 5, 9], h),
                Expr::universal(varset![2, 4, 6, 10], h),
                Expr::universal(varset![7, 8, 11, 12], h),
                Expr::universal(varset![1, 2, 3, 4, 7, 8, 9, 10, 11], h),
            ],
        )
        .unwrap();
        let (_, horns) = run(&q);
        assert_eq!(horns.len(), 4, "all four incomparable bodies found");
        let bodies: BTreeSet<VarSet> = horns.into_iter().map(|(b, _)| b).collect();
        assert!(bodies.contains(&varset![1, 2, 3, 4, 7, 8, 9, 10, 11]));
    }

    #[test]
    fn question_count_scales_with_n_to_theta() {
        // Theorem 3.5: O(n^θ) questions for the θ bodies of one head.
        // θ = 2 here; check the count stays well under n².
        for m in [6u16, 10, 14] {
            let n = m + 1;
            let h = VarId(m);
            let q = Query::new(
                n,
                [
                    Expr::universal(VarSet::from_indices([0, 1]), h),
                    Expr::universal(VarSet::from_indices([2, 3]), h),
                ],
            )
            .unwrap();
            let mut counting = CountingOracle::new(QueryOracle::new(q));
            let opts = LearnOptions::default();
            let mut asker = Asker::new(&mut counting, &opts);
            let heads = classify_universal_heads(n, &mut asker).unwrap();
            let horns = learn_universal_horns(n, &heads, &mut asker).unwrap();
            assert_eq!(horns.len(), 2);
            let qs = counting.stats().questions;
            let bound = 4 * (m as usize) * (m as usize) + 8 * m as usize + 8;
            assert!(qs <= bound, "n={n}: {qs} questions > {bound}");
        }
    }

    #[test]
    fn no_heads_no_questions_beyond_classification() {
        let q = Query::new(3, [Expr::conj(varset![1, 2, 3])]).unwrap();
        let mut counting = CountingOracle::new(QueryOracle::new(q));
        let opts = LearnOptions::default();
        let mut asker = Asker::new(&mut counting, &opts);
        let heads = classify_universal_heads(3, &mut asker).unwrap();
        assert!(heads.is_empty());
        let horns = learn_universal_horns(3, &heads, &mut asker).unwrap();
        assert!(horns.is_empty());
        assert_eq!(counting.stats().questions, 3);
    }
}
