//! Class-membership validation — §6 future work: "we plan to design
//! algorithms to verify that the user's query is indeed in qhorn-1 or
//! role-preserving qhorn".
//!
//! Exact learners are only guaranteed correct when the oracle's intent
//! lies in the promised class. [`learn_and_validate`] composes the learner
//! with the §4 verifier: learn under the class assumption, then run the
//! learned query's verification set against the same oracle. By
//! Theorem 4.2:
//!
//! * if the intent is in the class, learning is exact and verification
//!   passes — [`Validated::InClass`];
//! * if the intent is outside the class (or the user is noisy), either
//!   the learner's invariants break mid-run or the verification set
//!   surfaces a disagreement — [`Validated::OutOfClass`] with the witness.
//!
//! This is sound (an `InClass` verdict is justified by Thm 4.2 whenever
//! the intent is role-preserving) and complete for role-preserving
//! intents; for intents outside qhorn entirely it is a best-effort
//! refutation — some non-qhorn intents coincide with a qhorn query on
//! every asked question, and no finite question set can rule that out.

use super::role_preserving::learn_role_preserving;
use super::{LearnError, LearnOptions, LearnOutcome};
use crate::oracle::MembershipOracle;
use crate::verify::{Discrepancy, VerificationSet};

/// Verdict of [`learn_and_validate`].
#[derive(Debug)]
pub enum Validated {
    /// Learning succeeded and the user confirmed every verification
    /// question: the intent is (indistinguishable from) the learned
    /// role-preserving query.
    InClass(LearnOutcome),
    /// The intent is not a (complete) role-preserving query: either the
    /// learner hit contradictory answers, or verification surfaced a
    /// disagreement with the learned query.
    OutOfClass {
        /// The query learned under the class assumption, if learning
        /// finished.
        best_effort: Option<LearnOutcome>,
        /// The verification disagreement, when one was found.
        witness: Option<Discrepancy>,
        /// The learner error, when learning itself failed.
        learn_error: Option<LearnError>,
    },
}

impl Validated {
    /// `true` for [`Validated::InClass`].
    #[must_use]
    pub fn is_in_class(&self) -> bool {
        matches!(self, Validated::InClass(_))
    }
}

/// Learns under the role-preserving assumption, then validates the result
/// against the same oracle with the §4 verification set.
pub fn learn_and_validate<O: MembershipOracle + ?Sized>(
    n: u16,
    oracle: &mut O,
    opts: &LearnOptions,
) -> Validated {
    let outcome = match learn_role_preserving(n, oracle, opts) {
        Ok(o) => o,
        Err(e) => {
            return Validated::OutOfClass {
                best_effort: None,
                witness: None,
                learn_error: Some(e),
            }
        }
    };
    let set =
        VerificationSet::build(outcome.query()).expect("the learner emits role-preserving queries");
    let mut discrepancies = set.verify_all(&mut *oracle);
    if discrepancies.is_empty() {
        Validated::InClass(outcome)
    } else {
        Validated::OutOfClass {
            best_effort: Some(outcome),
            witness: Some(discrepancies.remove(0)),
            learn_error: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{FnOracle, QueryOracle};
    use crate::query::equiv::equivalent;
    use crate::query::{Expr, Query};
    use crate::var::VarId;
    use crate::{varset, Obj, Response};

    #[test]
    fn in_class_intent_is_validated() {
        let target = crate::query::tests::paper_example();
        let mut user = QueryOracle::new(target.clone());
        let verdict = learn_and_validate(6, &mut user, &LearnOptions::default());
        match verdict {
            Validated::InClass(outcome) => {
                assert!(equivalent(outcome.query(), &target));
            }
            other => panic!("expected InClass, got {other:?}"),
        }
    }

    #[test]
    fn alias_intent_demonstrates_best_effort_limit() {
        // Thm 2.1's alias query is general qhorn, not role-preserving: x1
        // and x2 are each other's heads and bodies. Its behaviour agrees
        // with ∀x1 ∀x2 on every verification question, so the validator
        // cannot flag it (Thm 4.2 covers role-preserving intents only) —
        // but the accepted query is provably NOT the intent, witnessed by
        // an object outside the verification set.
        let alias = Query::new(
            2,
            [
                Expr::universal(varset![1], VarId(1)),
                Expr::universal(varset![2], VarId(0)),
            ],
        )
        .unwrap();
        let mut user = QueryOracle::new(alias.clone());
        let verdict = learn_and_validate(2, &mut user, &LearnOptions::default());
        match verdict {
            Validated::InClass(outcome) => {
                // Kernel-backed brute force: the accepted query provably
                // differs from the intent somewhere.
                let witness = crate::query::equiv::find_counterexample(outcome.query(), &alias);
                assert!(
                    witness.is_some(),
                    "if the verdict is InClass the intent must genuinely differ \
                     somewhere the verification set cannot look"
                );
            }
            Validated::OutOfClass { .. } => {} // also acceptable
        }
    }

    #[test]
    fn cardinality_intent_is_flagged() {
        // "At least two distinct tuples" is not expressible in qhorn.
        let mut user = FnOracle(|q: &Obj| Response::from_bool(q.len() >= 2));
        let verdict = learn_and_validate(2, &mut user, &LearnOptions::default());
        assert!(!verdict.is_in_class(), "{verdict:?}");
        if let Validated::OutOfClass {
            witness,
            learn_error,
            ..
        } = verdict
        {
            assert!(witness.is_some() || learn_error.is_some());
        }
    }

    #[test]
    fn negation_intent_is_flagged() {
        // "No tuple has x1 ∧ x2" — anti-monotone, outside qhorn.
        let mut user =
            FnOracle(|q: &Obj| Response::from_bool(!q.some_tuple_satisfies(&varset![1, 2])));
        let verdict = learn_and_validate(2, &mut user, &LearnOptions::default());
        assert!(!verdict.is_in_class(), "{verdict:?}");
    }
}
