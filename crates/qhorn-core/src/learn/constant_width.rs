//! The tuple-budgeted learner of Lemma 3.4.
//!
//! Lemma 3.4 shows that restricting membership questions to a constant
//! number `c` of tuples forces Ω(n²/c²) questions to learn the pair-head
//! family
//!
//! ```text
//! ∃ C_ij → x_i   ∃ C_ij → x_j      with C_ij = X − {x_i, x_j}
//! ```
//!
//! (two head variables, everything else one shared body). This module
//! implements both the query family and the optimal-within-the-restriction
//! learner: questions carry only "class-2" tuples (exactly one variable
//! false, the informative kind per the Lemma's case analysis), a question
//! `{T_h : h ∈ H}` is an answer iff both heads lie in `H`, and a
//! block-cover of the pair space needs ≈ C(n,2)/C(c,2) questions.
//!
//! The experiment `exp_constant_width_lower_bound` contrasts the measured
//! counts with the unrestricted matrix-question learner (Lemma 3.3), which
//! needs only O(lg n) questions.

use super::questions::matrix;
use super::{Asker, LearnError, LearnOptions, LearnStats};
use crate::oracle::MembershipOracle;
use crate::query::{Expr, Query};
use crate::var::{VarId, VarSet};

/// Builds the Lemma 3.4 target query: heads `i`, `j` (0-based), body all
/// other variables.
///
/// # Panics
/// Panics unless `i < j < n` and `n ≥ 3`.
#[must_use]
pub fn pair_head_query(n: u16, i: VarId, j: VarId) -> Query {
    assert!(
        n >= 3 && i < j && (j.index() as u16) < n,
        "need i < j < n, n ≥ 3"
    );
    let body: VarSet = (0..n).map(VarId).filter(|v| *v != i && *v != j).collect();
    Query::new(
        n,
        [
            Expr::existential_horn(body.clone(), i),
            Expr::existential_horn(body, j),
        ],
    )
    .expect("pair-head query is valid")
}

/// Outcome of the width-restricted learner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairHeadOutcome {
    /// The discovered head pair (0-based, ascending).
    pub heads: (VarId, VarId),
    /// Question accounting.
    pub stats: LearnStats,
}

/// Learns which pair of variables are the heads of a [`pair_head_query`]
/// using membership questions of at most `c` tuples each.
///
/// Worst case ≈ `C(n,2)/C(c,2)` questions (Lemma 3.4's lower bound is
/// tight for this strategy up to constants).
///
/// # Errors
/// [`LearnError::InconsistentOracle`] if no pair of variables explains the
/// responses; [`LearnError::BudgetExceeded`] on budget exhaustion.
///
/// # Panics
/// Panics if `c < 2` or `n < 3`.
pub fn learn_pair_heads<O: MembershipOracle + ?Sized>(
    n: u16,
    c: usize,
    oracle: &mut O,
    opts: &LearnOptions,
) -> Result<PairHeadOutcome, LearnError> {
    assert!(
        c >= 2,
        "questions need at least two tuples to carry information"
    );
    assert!(n >= 3);
    let mut asker = Asker::new(oracle, opts);

    // Cover the pair space with blocks of ≤ c variables: blocks of size
    // ⌈c/2⌉; every pair lies within some single block or block union.
    let half = usize::max(1, c / 2);
    let blocks: Vec<Vec<VarId>> = (0..n as usize)
        .step_by(half)
        .map(|start| {
            (start..usize::min(start + half, n as usize))
                .map(|i| VarId(i as u16))
                .collect()
        })
        .collect();

    let mut candidate: Option<Vec<VarId>> = None;
    'outer: for (bi, a) in blocks.iter().enumerate() {
        for b in blocks.iter().skip(bi) {
            let h: Vec<VarId> = if std::ptr::eq(a, b) {
                a.clone()
            } else {
                a.iter().chain(b.iter()).copied().collect()
            };
            if h.len() < 2 {
                continue;
            }
            debug_assert!(h.len() <= c);
            let set: VarSet = h.iter().copied().collect();
            if asker.is_answer(&matrix(n, &set))? {
                candidate = Some(h);
                break 'outer;
            }
        }
    }
    let Some(h) = candidate else {
        return Err(LearnError::InconsistentOracle {
            detail: "no block of variables contains the head pair".to_string(),
        });
    };

    // Pin down the exact pair within the ≤ c candidates. All questions
    // below are matrix questions over subsets of `h`, so the width budget
    // is respected. First isolate one head with O(lg c) questions (the
    // same divide-and-boost search as GetHead, Lemma 3.3)…
    let first = isolate_one_head(n, &h, &mut asker)?;
    // …then binary-search the rest boosted by the found head:
    // matrix(S ∪ {first}) answers iff S contains the second head.
    let mut rest: Vec<VarId> = h.iter().copied().filter(|&v| v != first).collect();
    while rest.len() > 1 {
        let (a, b) = rest.split_at(rest.len() / 2);
        let probe: VarSet = a.iter().copied().chain(std::iter::once(first)).collect();
        rest = if asker.is_answer(&matrix(n, &probe))? {
            a.to_vec()
        } else {
            b.to_vec()
        };
    }
    let Some(&second) = rest.first() else {
        return Err(LearnError::InconsistentOracle {
            detail: "a block answered but no pair within it does".to_string(),
        });
    };
    let (x, y) = if first < second {
        (first, second)
    } else {
        (second, first)
    };
    Ok(PairHeadOutcome {
        heads: (x, y),
        stats: asker.into_stats(),
    })
}

/// Precondition: `h` contains both heads. Returns one of them with
/// O(lg |h|) matrix questions (mirrors `gethead::isolate`).
fn isolate_one_head<O: MembershipOracle + ?Sized>(
    n: u16,
    h: &[VarId],
    asker: &mut Asker<'_, O>,
) -> Result<VarId, LearnError> {
    let mut s: Vec<VarId> = h.to_vec();
    loop {
        if s.len() == 2 {
            return Ok(s[0]);
        }
        let (a, b) = s.split_at(s.len() / 2);
        let set_a: VarSet = a.iter().copied().collect();
        if a.len() >= 2 && asker.is_answer(&matrix(n, &set_a))? {
            s = a.to_vec();
            continue;
        }
        let set_b: VarSet = b.iter().copied().collect();
        if b.len() >= 2 && asker.is_answer(&matrix(n, &set_b))? {
            s = b.to_vec();
            continue;
        }
        // One head in each half: binary-search `a` boosted by `b`.
        let mut slice: Vec<VarId> = a.to_vec();
        while slice.len() > 1 {
            let (lo, hi) = slice.split_at(slice.len() / 2);
            let probe: VarSet = lo.iter().copied().chain(b.iter().copied()).collect();
            slice = if asker.is_answer(&matrix(n, &probe))? {
                lo.to_vec()
            } else {
                hi.to_vec()
            };
        }
        return Ok(slice[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CountingOracle, QueryOracle};

    #[test]
    fn pair_head_query_semantics() {
        let q = pair_head_query(4, VarId(1), VarId(3));
        // Heads x2, x4 (one-based); body {x1, x3}.
        // Ti = only xi false. Question {T2, T4} is an answer:
        assert!(q.accepts(&crate::Obj::from_bits("1011 1110")));
        // {T2, T3} is not (x4's conjunction unsatisfied).
        assert!(!q.accepts(&crate::Obj::from_bits("1011 1101")));
        // A single class-2 tuple is never an answer.
        assert!(!q.accepts(&crate::Obj::from_bits("1011")));
    }

    #[test]
    fn learns_every_pair_with_width_2() {
        let n = 6u16;
        for i in 0..n {
            for j in (i + 1)..n {
                let target = pair_head_query(n, VarId(i), VarId(j));
                let mut oracle = QueryOracle::new(target);
                let out = learn_pair_heads(n, 2, &mut oracle, &LearnOptions::default()).unwrap();
                assert_eq!(out.heads, (VarId(i), VarId(j)), "i={i} j={j}");
            }
        }
    }

    #[test]
    fn learns_with_larger_widths() {
        let n = 9u16;
        for c in [4usize, 6, 8] {
            let target = pair_head_query(n, VarId(2), VarId(7));
            let mut oracle = QueryOracle::new(target);
            let out = learn_pair_heads(n, c, &mut oracle, &LearnOptions::default()).unwrap();
            assert_eq!(out.heads, (VarId(2), VarId(7)), "c={c}");
            assert!(out.stats.max_tuples_per_question <= c, "width respected");
        }
    }

    #[test]
    fn question_count_shrinks_quadratically_with_width() {
        // Lemma 3.4: ≈ n²/c² questions; doubling c should cut the count by
        // roughly 4 in the worst case (heads in the last block).
        let n = 32u16;
        let target = pair_head_query(n, VarId(30), VarId(31));
        let count_for = |c: usize| {
            let mut oracle = CountingOracle::new(QueryOracle::new(target.clone()));
            learn_pair_heads(n, c, &mut oracle, &LearnOptions::default()).unwrap();
            oracle.stats().questions
        };
        let q2 = count_for(2);
        let q8 = count_for(8);
        assert!(q2 > 3 * q8, "width 2: {q2}, width 8: {q8}");
    }

    #[test]
    fn kernel_oracle_learns_identically_to_naive_evaluation() {
        // Same learner trajectory whether questions are answered by the
        // compiled kernel oracle or the naive reference evaluator.
        use crate::query::eval::reference;
        let n = 8u16;
        let target = pair_head_query(n, VarId(1), VarId(6));
        let mut kernel_oracle = CountingOracle::new(QueryOracle::new(target.clone()));
        let kernel_out =
            learn_pair_heads(n, 4, &mut kernel_oracle, &LearnOptions::default()).unwrap();
        let naive_target = target.clone();
        let mut naive_oracle =
            CountingOracle::new(crate::oracle::FnOracle(move |obj: &crate::Obj| {
                crate::Response::from_bool(reference::accepts(&naive_target, obj))
            }));
        let naive_out =
            learn_pair_heads(n, 4, &mut naive_oracle, &LearnOptions::default()).unwrap();
        assert_eq!(kernel_out.heads, naive_out.heads);
        assert_eq!(
            kernel_oracle.stats().questions,
            naive_oracle.stats().questions
        );
    }

    #[test]
    fn inconsistent_oracle_detected() {
        // An oracle that always says non-answer fits no pair.
        let mut oracle = crate::oracle::FnOracle(|_: &crate::Obj| crate::Response::NonAnswer);
        let err = learn_pair_heads(5, 2, &mut oracle, &LearnOptions::default()).unwrap_err();
        assert!(matches!(err, LearnError::InconsistentOracle { .. }));
    }
}
