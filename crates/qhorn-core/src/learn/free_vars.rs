//! Free-variable detection — an extension lifting the paper's completeness
//! assumption (DESIGN.md §1, assumption 3).
//!
//! The learners of §3 assume every variable occurs in some expression of
//! the target. A variable `v` that occurs nowhere is indistinguishable from
//! `∃v` using the learners' two-tuple questions, but one **single-tuple**
//! question separates them: `{the tuple with only v false}` is an answer
//! iff `v` is unconstrained (every conjunction and guarantee clause avoids
//! `v`, every universal head ≠ `v` stays true).
//!
//! `learn_with_free_vars` (crate-internal, reached via
//! [`super::LearnOptions::detect_free_variables`]) runs the scan
//! (n questions), then learns over the constrained subspace through an
//! oracle adapter that pins free variables to true, and finally relabels
//! the learned query back to the full variable space.

use super::questions;
use super::{Asker, LearnError, LearnOptions, LearnOutcome, Phase};
use crate::object::{Obj, Response};
use crate::oracle::MembershipOracle;
use crate::query::{Expr, Query};
use crate::tuple::BoolTuple;
use crate::var::{VarId, VarSet};

/// Detects the variables the target query does not mention, using one
/// single-tuple question per variable.
pub fn detect_free_variables<O: MembershipOracle + ?Sized>(
    n: u16,
    oracle: &mut O,
    opts: &LearnOptions,
) -> Result<(VarSet, super::LearnStats), LearnError> {
    let mut asker = Asker::new(oracle, opts);
    asker.set_phase(Phase::FreeVariableScan);
    let mut free = VarSet::new();
    for i in 0..n {
        let v = VarId(i);
        if asker.is_answer(&questions::free_var_probe(n, v))? {
            free.insert(v);
        }
    }
    Ok((free, asker.into_stats()))
}

/// Maps membership questions over the constrained subspace (arity `m`) to
/// the full space (arity `n`), pinning free variables to true.
pub(crate) struct SubspaceOracle<'a, O: MembershipOracle + ?Sized> {
    inner: &'a mut O,
    /// `map[j]` is the full-space variable for subspace variable `j`.
    map: Vec<VarId>,
    n: u16,
}

impl<O: MembershipOracle + ?Sized> SubspaceOracle<'_, O> {
    fn lift_tuple(&self, t: &BoolTuple) -> BoolTuple {
        let mut trues = VarSet::full(self.n);
        for (j, &full) in self.map.iter().enumerate() {
            if !t.get(VarId(j as u16)) {
                trues.remove(full);
            }
        }
        BoolTuple::from_true_set(self.n, trues)
    }
}

impl<O: MembershipOracle + ?Sized> MembershipOracle for SubspaceOracle<'_, O> {
    fn ask(&mut self, question: &Obj) -> Response {
        let lifted = Obj::new(self.n, question.tuples().iter().map(|t| self.lift_tuple(t)));
        self.inner.ask(&lifted)
    }
}

/// Runs `inner` (a complete-target learner) after a free-variable scan,
/// relabelling the result back to arity `n`.
pub(crate) fn learn_with_free_vars<O, F>(
    n: u16,
    oracle: &mut O,
    opts: &LearnOptions,
    inner: F,
) -> Result<LearnOutcome, LearnError>
where
    O: MembershipOracle + ?Sized,
    F: for<'s> FnOnce(
        u16,
        &'s mut SubspaceOracle<'_, O>,
        &LearnOptions,
    ) -> Result<LearnOutcome, LearnError>,
{
    let (free, scan_stats) = detect_free_variables(n, oracle, opts)?;
    let map: Vec<VarId> = (0..n).map(VarId).filter(|v| !free.contains(*v)).collect();
    let m = map.len() as u16;
    let inner_opts = LearnOptions {
        detect_free_variables: false,
        max_questions: opts
            .max_questions
            .map(|b| b.saturating_sub(scan_stats.questions)),
    };
    let mut sub = SubspaceOracle {
        inner: oracle,
        map: map.clone(),
        n,
    };
    let outcome = inner(m, &mut sub, &inner_opts)?;
    let (query, mut stats) = outcome.into_parts();

    // Relabel to the full space.
    let relabel = |vs: &VarSet| -> VarSet { vs.iter().map(|v| map[v.index()]).collect() };
    let exprs: Vec<Expr> = query
        .exprs()
        .iter()
        .map(|e| match e {
            Expr::UniversalHorn { body, head } => Expr::universal(relabel(body), map[head.index()]),
            Expr::ExistentialHorn { body, head } => {
                Expr::existential_horn(relabel(body), map[head.index()])
            }
            Expr::ExistentialConj { vars } => Expr::conj(relabel(vars)),
        })
        .collect();
    let full = Query::new(n, exprs).expect("relabelled expressions are valid");

    // Merge scan accounting.
    stats.questions += scan_stats.questions;
    stats.tuples += scan_stats.tuples;
    stats.max_tuples_per_question = stats
        .max_tuples_per_question
        .max(scan_stats.max_tuples_per_question);
    for (p, c) in scan_stats.by_phase {
        *stats.by_phase.entry(p).or_insert(0) += c;
    }
    for (p, nanos) in scan_stats.nanos_by_phase {
        let slot = stats.nanos_by_phase.entry(p).or_insert(0);
        *slot = slot.saturating_add(nanos);
    }
    Ok(LearnOutcome::new(full, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::learn_qhorn1;
    use crate::oracle::QueryOracle;
    use crate::query::equiv::equivalent;
    use crate::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    #[test]
    fn detects_unconstrained_variables() {
        // x3 is unmentioned.
        let target = Query::new(
            4,
            [Expr::universal(varset![1], v(2)), Expr::conj(varset![4])],
        )
        .unwrap();
        let mut oracle = QueryOracle::new(target);
        let (free, stats) =
            detect_free_variables(4, &mut oracle, &LearnOptions::default()).unwrap();
        assert_eq!(free, varset![3]);
        assert_eq!(stats.questions, 4);
        assert_eq!(stats.phase(Phase::FreeVariableScan), 4);
    }

    #[test]
    fn no_free_variables_in_complete_query() {
        let target = Query::new(2, [Expr::conj(varset![1, 2])]).unwrap();
        let mut oracle = QueryOracle::new(target);
        let (free, _) = detect_free_variables(2, &mut oracle, &LearnOptions::default()).unwrap();
        assert!(free.is_empty());
    }

    #[test]
    fn learns_incomplete_target_with_option_enabled() {
        // x2 and x5 are free; a plain run would mislearn them as ∃x2 ∃x5.
        let target = Query::new(
            5,
            [Expr::universal(varset![1], v(3)), Expr::conj(varset![4])],
        )
        .unwrap();
        let opts = LearnOptions {
            detect_free_variables: true,
            ..Default::default()
        };
        let mut oracle = QueryOracle::new(target.clone());
        let outcome = learn_qhorn1(5, &mut oracle, &opts).unwrap();
        assert!(
            equivalent(outcome.query(), &target),
            "learned {} for target {}",
            outcome.query(),
            target
        );
        // Without the scan, the learner adds spurious ∃ conjunctions.
        let mut oracle = QueryOracle::new(target.clone());
        let plain = learn_qhorn1(5, &mut oracle, &LearnOptions::default()).unwrap();
        assert!(!equivalent(plain.query(), &target));
    }

    #[test]
    fn all_variables_free_learns_empty_query() {
        let target = Query::empty(3);
        let opts = LearnOptions {
            detect_free_variables: true,
            ..Default::default()
        };
        let mut oracle = QueryOracle::new(target.clone());
        let outcome = learn_qhorn1(3, &mut oracle, &opts).unwrap();
        assert!(equivalent(outcome.query(), &target));
        assert_eq!(outcome.stats().questions, 3, "only the scan is needed");
    }

    #[test]
    fn complete_targets_unaffected_by_scan() {
        let target = Query::new(
            3,
            [Expr::universal(varset![1], v(2)), Expr::conj(varset![3])],
        )
        .unwrap();
        let opts = LearnOptions {
            detect_free_variables: true,
            ..Default::default()
        };
        let mut oracle = QueryOracle::new(target.clone());
        let outcome = learn_qhorn1(3, &mut oracle, &opts).unwrap();
        assert!(equivalent(outcome.query(), &target));
    }
}
