//! Noise hardening — repetition with majority vote.
//!
//! §5's "noisy users" discussion proposes interface-level remedies
//! (response history + restart, implemented in `qhorn-engine::session`).
//! This module adds the classic algorithmic remedy: ask each question
//! `2r + 1` times and take the majority. For a user who mislabels each
//! presentation independently with probability `p < 1/2`, the per-question
//! error drops to `P[Binomial(2r+1, p) > r]`, which shrinks exponentially
//! in `r`; a union bound over the learner's Q questions then bounds the
//! overall failure probability.
//!
//! The wrapper caches majority verdicts so repeated questions (common in
//! replay scenarios) are not re-amplified.

use crate::object::{Obj, Response};
use crate::oracle::MembershipOracle;
use std::collections::HashMap;

/// Majority-vote amplification over a noisy oracle.
pub struct MajorityOracle<O> {
    inner: O,
    repetitions: usize,
    cache: HashMap<Obj, Response>,
    presentations: usize,
}

impl<O: MembershipOracle> MajorityOracle<O> {
    /// Wraps `inner`, asking each distinct question `2r + 1` times.
    #[must_use]
    pub fn new(inner: O, r: usize) -> Self {
        MajorityOracle {
            inner,
            repetitions: 2 * r + 1,
            cache: HashMap::new(),
            presentations: 0,
        }
    }

    /// Total presentations made to the inner (noisy) user.
    #[must_use]
    pub fn presentations(&self) -> usize {
        self.presentations
    }

    /// Distinct questions asked.
    #[must_use]
    pub fn distinct_questions(&self) -> usize {
        self.cache.len()
    }
}

impl<O: MembershipOracle> MembershipOracle for MajorityOracle<O> {
    fn ask(&mut self, question: &Obj) -> Response {
        if let Some(&r) = self.cache.get(question) {
            return r;
        }
        let mut answers = 0usize;
        for done in 0..self.repetitions {
            self.presentations += 1;
            if self.inner.ask(question).is_answer() {
                answers += 1;
            }
            // Early exit once the majority is decided.
            let remaining = self.repetitions - done - 1;
            if answers > self.repetitions / 2 || answers + remaining <= self.repetitions / 2 {
                break;
            }
        }
        let verdict = Response::from_bool(answers > self.repetitions / 2);
        self.cache.insert(question.clone(), verdict);
        verdict
    }
}

/// Per-question failure probability of a `2r+1` majority against flip
/// probability `p`: `P[Binomial(2r+1, p) ≥ r+1]`.
#[must_use]
pub fn majority_failure_probability(r: usize, p: f64) -> f64 {
    let trials = 2 * r + 1;
    let mut prob = 0.0;
    for k in (r + 1)..=trials {
        prob += binomial(trials, k) * p.powi(k as i32) * (1.0 - p).powi((trials - k) as i32);
    }
    prob
}

fn binomial(n: usize, k: usize) -> f64 {
    let mut out = 1.0f64;
    for i in 0..k {
        out = out * (n - i) as f64 / (i + 1) as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{FnOracle, QueryOracle};
    use crate::query::{Expr, Query};
    use crate::varset;

    #[test]
    fn clean_oracle_passes_through() {
        let q = Query::new(2, [Expr::conj(varset![1, 2])]).unwrap();
        let mut o = MajorityOracle::new(QueryOracle::new(q), 2);
        assert_eq!(o.ask(&Obj::from_bits("11")), Response::Answer);
        assert_eq!(o.ask(&Obj::from_bits("10")), Response::NonAnswer);
        // Early exit: a unanimous prefix of r+1 answers decides.
        assert_eq!(o.presentations(), 6, "3 + 3 presentations with early exit");
    }

    #[test]
    fn cache_prevents_reamplification() {
        let q = Query::new(2, [Expr::conj(varset![1, 2])]).unwrap();
        let mut o = MajorityOracle::new(QueryOracle::new(q), 1);
        o.ask(&Obj::from_bits("11"));
        let after_first = o.presentations();
        o.ask(&Obj::from_bits("11"));
        assert_eq!(o.presentations(), after_first);
        assert_eq!(o.distinct_questions(), 1);
    }

    #[test]
    fn deterministic_flipper_outvoted() {
        // A user who flips every third presentation.
        let mut count = 0usize;
        let inner = FnOracle(move |_: &Obj| {
            count += 1;
            Response::from_bool(!count.is_multiple_of(3)) // 2/3 of answers honest "yes"
        });
        let mut o = MajorityOracle::new(inner, 2);
        assert_eq!(o.ask(&Obj::from_bits("1")), Response::Answer);
    }

    #[test]
    fn failure_probability_decreases_with_r() {
        let p = 0.2;
        let f0 = majority_failure_probability(0, p);
        let f2 = majority_failure_probability(2, p);
        let f5 = majority_failure_probability(5, p);
        assert!((f0 - p).abs() < 1e-12, "r=0 is a single presentation");
        assert!(f2 < f0 && f5 < f2, "{f0} {f2} {f5}");
        assert!(f5 < 0.02);
    }

    #[test]
    fn failure_probability_is_half_at_half() {
        for r in [0usize, 1, 3] {
            let f = majority_failure_probability(r, 0.5);
            assert!((f - 0.5).abs() < 1e-9, "r={r}: {f}");
        }
    }
}
