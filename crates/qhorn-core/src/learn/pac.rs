//! PAC learning from random examples — the future-work direction of §6
//! ("we use randomly-generated membership questions to learn a query with
//! a certain probability of error", Valiant-style).
//!
//! Instead of *choosing* informative membership questions, the learner
//! receives labelled random objects drawn from a distribution `D` and
//! outputs a hypothesis consistent with the sample. By Occam/consistency
//! bounds, `m ≥ (ln |H| + ln 1/δ) / ε` samples suffice for error ≤ ε with
//! probability ≥ 1 − δ over a finite hypothesis class `H`.
//!
//! The hypothesis class is materialized by exhaustive enumeration
//! ([`crate::query::generate::enumerate_role_preserving`]), so this module
//! is limited to small arities (n ≤ 3) — faithful to the paper's framing,
//! which leaves efficient PAC algorithms open. The `exp_pac` experiment
//! measures the empirical error as a function of sample size.

use super::LearnError;
use crate::kernel::CompiledQuery;
use crate::object::Obj;
use crate::oracle::MembershipOracle;
use crate::query::generate::enumerate_role_preserving;
use crate::query::Query;

/// Accuracy/confidence parameters of PAC learning.
#[derive(Clone, Copy, Debug)]
pub struct PacParams {
    /// Target error bound ε ∈ (0, 1).
    pub epsilon: f64,
    /// Target failure probability δ ∈ (0, 1).
    pub delta: f64,
}

impl Default for PacParams {
    fn default() -> Self {
        PacParams {
            epsilon: 0.1,
            delta: 0.05,
        }
    }
}

/// Outcome of a PAC run.
#[derive(Clone, Debug)]
pub struct PacOutcome {
    /// A hypothesis consistent with every drawn sample.
    pub query: Query,
    /// Number of labelled samples consumed.
    pub samples_used: usize,
    /// Hypotheses still consistent when sampling stopped (1 means the
    /// sample uniquely identified the target within the class).
    pub hypotheses_remaining: usize,
}

/// The Occam sample bound `⌈(ln |H| + ln 1/δ) / ε⌉` for a hypothesis class
/// of the given size.
#[must_use]
pub fn sample_bound(class_size: usize, params: &PacParams) -> usize {
    assert!(params.epsilon > 0.0 && params.epsilon < 1.0);
    assert!(params.delta > 0.0 && params.delta < 1.0);
    (((class_size as f64).ln() + (1.0 / params.delta).ln()) / params.epsilon).ceil() as usize
}

/// PAC-learns a complete role-preserving query over `n ≤ 3` variables from
/// random labelled examples.
///
/// `sample` draws one object from the example distribution; `oracle`
/// labels it (the "teacher"). The learner keeps the version space of the
/// enumerated class and returns its first surviving member after the Occam
/// bound many samples (or earlier if the version space becomes a
/// singleton).
///
/// # Errors
/// [`LearnError::InconsistentOracle`] if no class member is consistent
/// with the sample (noisy teacher or out-of-class target).
///
/// # Panics
/// Panics if `n > 3` (hypothesis enumeration).
pub fn pac_learn_role_preserving<O: MembershipOracle + ?Sized>(
    n: u16,
    sample: &mut dyn FnMut() -> Obj,
    oracle: &mut O,
    params: &PacParams,
) -> Result<PacOutcome, LearnError> {
    // Compile every hypothesis once up front: each sample then shrinks
    // the version space with kernel word checks instead of AST walks.
    let mut version_space: Vec<(Query, CompiledQuery)> = enumerate_role_preserving(n, true)
        .into_iter()
        .map(|q| {
            let plan = CompiledQuery::compile(&q);
            (q, plan)
        })
        .collect();
    let budget = sample_bound(version_space.len().max(2), params);
    let mut used = 0;
    while used < budget && version_space.len() > 1 {
        let obj = sample();
        let label = oracle.ask(&obj);
        used += 1;
        version_space.retain(|(_, plan)| plan.matches(&obj) == label.is_answer());
        if version_space.is_empty() {
            return Err(LearnError::InconsistentOracle {
                detail: format!(
                    "no complete role-preserving query over {n} variables matches the sample"
                ),
            });
        }
    }
    let remaining = version_space.len();
    let (query, _) = version_space
        .into_iter()
        .next()
        .expect("non-empty version space");
    Ok(PacOutcome {
        query,
        samples_used: used,
        hypotheses_remaining: remaining,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::QueryOracle;
    use crate::query::equiv::equivalent;
    use crate::query::generate::all_objects;
    use crate::query::Expr;
    use crate::varset;

    /// Deterministic "random" sampler cycling through all objects — a
    /// worst-case-free stand-in that avoids a rand dependency in core.
    fn cycling_sampler(n: u16) -> impl FnMut() -> Obj {
        let objs: Vec<Obj> = all_objects(n).collect();
        let mut i = 0usize;
        move || {
            // Stride co-prime with the object count for variety.
            i = (i + 7) % objs.len();
            objs[i].clone()
        }
    }

    #[test]
    fn sample_bound_grows_with_class_and_confidence() {
        let p = PacParams {
            epsilon: 0.1,
            delta: 0.05,
        };
        assert!(sample_bound(1000, &p) > sample_bound(10, &p));
        let tight = PacParams {
            epsilon: 0.01,
            delta: 0.05,
        };
        assert!(sample_bound(100, &tight) > sample_bound(100, &p));
    }

    #[test]
    fn identifies_target_given_enough_samples() {
        let target = Query::new(2, [Expr::universal(varset![1], crate::VarId(1))]).unwrap();
        let mut oracle = QueryOracle::new(target.clone());
        let mut sampler = cycling_sampler(2);
        let params = PacParams {
            epsilon: 0.01,
            delta: 0.01,
        };
        let out = pac_learn_role_preserving(2, &mut sampler, &mut oracle, &params).unwrap();
        // The cycling sampler covers every object, so the version space
        // collapses to the exact semantic class.
        assert!(equivalent(&out.query, &target));
        assert_eq!(out.hypotheses_remaining, 1);
    }

    #[test]
    fn inconsistent_teacher_detected() {
        // Labels everything non-answer, including {11…1} — no complete
        // role-preserving query does that… except none accepts nothing;
        // actually ∀x1∃x2-style queries all accept the full object, so the
        // all-true object forces emptiness.
        let mut oracle = crate::oracle::FnOracle(|_: &Obj| crate::Response::NonAnswer);
        let mut sampler = || Obj::from_bits("11");
        let err = pac_learn_role_preserving(2, &mut sampler, &mut oracle, &PacParams::default());
        assert!(matches!(err, Err(LearnError::InconsistentOracle { .. })));
    }

    #[test]
    fn stops_early_on_singleton_version_space() {
        let target = Query::new(2, [Expr::conj(varset![1, 2])]).unwrap();
        let mut oracle = QueryOracle::new(target);
        let mut sampler = cycling_sampler(2);
        let params = PacParams {
            epsilon: 0.001,
            delta: 0.001,
        };
        let out = pac_learn_role_preserving(2, &mut sampler, &mut oracle, &params).unwrap();
        let bound = sample_bound(enumerate_role_preserving(2, true).len(), &params);
        assert!(out.samples_used <= bound);
        assert_eq!(out.hypotheses_remaining, 1);
    }
}
