//! The qhorn-1 learner (§3.1, Theorem 3.1): exact learning with O(n lg n)
//! membership questions in polynomial time.
//!
//! Three subtasks, each O(n lg n) questions:
//!
//! 1. **Classify universal head variables** (§3.1.1): one two-tuple
//!    question per variable.
//! 2. **Learn universal bodies** (§3.1.2, Algorithm 1): for each universal
//!    head, first binary-search the already-discovered bodies for a
//!    dependence (1 + lg n questions when the body is shared), otherwise
//!    group-test the existential variables (O(|B| lg n)).
//! 3. **Learn existential Horn expressions** (§3.1.3, Algorithm 4): for
//!    each unresolved existential variable, binary-search known bodies for
//!    a dependence; otherwise discover its dependents, locate a head with
//!    matrix questions ([`super::gethead`]), and split the part into body
//!    and heads with pairwise independence questions.
//!
//! The target must be a *complete* qhorn-1 query (every variable occurs);
//! enable [`super::LearnOptions::detect_free_variables`] to lift that
//! assumption.

use super::gethead::get_head;
use super::questions;
use super::search::{find_all, find_one};
use super::{Asker, LearnError, LearnOptions, LearnOutcome, Phase};
use crate::object::Obj;
use crate::oracle::MembershipOracle;
use crate::query::{Expr, Query};
use crate::var::{VarId, VarSet};
use std::collections::BTreeSet;

/// Learns a complete qhorn-1 query over `n` variables from membership
/// questions (Theorem 3.1).
///
/// The oracle must answer consistently with some complete qhorn-1 target;
/// the returned query is then semantically equivalent to it. With
/// [`LearnOptions::detect_free_variables`] the completeness assumption is
/// dropped at a cost of `n` extra questions.
///
/// # Errors
/// [`LearnError::BudgetExceeded`] if [`LearnOptions::max_questions`] runs
/// out.
pub fn learn_qhorn1<O: MembershipOracle + ?Sized>(
    n: u16,
    oracle: &mut O,
    opts: &LearnOptions,
) -> Result<LearnOutcome, LearnError> {
    if opts.detect_free_variables {
        return super::free_vars::learn_with_free_vars(n, oracle, opts, |m, sub, o| {
            learn_qhorn1_complete(m, sub, o)
        });
    }
    learn_qhorn1_complete(n, oracle, opts)
}

/// [`learn_qhorn1`] without the free-variable pre-pass (requires a complete
/// target).
pub fn learn_qhorn1_complete<O: MembershipOracle + ?Sized>(
    n: u16,
    oracle: &mut O,
    opts: &LearnOptions,
) -> Result<LearnOutcome, LearnError> {
    let mut asker = Asker::new(oracle, opts);
    let mut exprs: Vec<Expr> = Vec::new();

    // ---- Subtask 1 (§3.1.1): universal head variables. -----------------
    asker.set_phase(Phase::ClassifyHeads);
    let mut universal_heads: Vec<VarId> = Vec::new();
    let mut existential: Vec<VarId> = Vec::new();
    for i in 0..n {
        let v = VarId(i);
        if asker.is_answer(&questions::classify_head(n, v))? {
            existential.push(v);
        } else {
            universal_heads.push(v);
        }
    }

    // ---- Subtask 2 (§3.1.2, Algorithm 1): bodies of universal heads. ---
    asker.set_phase(Phase::UniversalBodies);
    // Discovered bodies (universal first, existential bodies added later).
    let mut bodies: Vec<VarSet> = Vec::new();
    for &h in &universal_heads {
        let body = find_body_for_universal_head(n, h, &bodies, &existential, &mut asker)?;
        if let Some(body) = body {
            if !bodies.contains(&body) {
                bodies.push(body.clone());
            }
            exprs.push(Expr::universal(body, h));
        } else {
            exprs.push(Expr::universal_bodyless(h));
        }
    }

    // ---- Subtask 3 (§3.1.3, Algorithm 4): existential expressions. -----
    let body_union =
        |bodies: &[VarSet]| -> VarSet { bodies.iter().fold(VarSet::new(), |acc, b| acc.union(b)) };
    let mut remaining: BTreeSet<VarId> = existential
        .iter()
        .copied()
        .filter(|v| !body_union(&bodies).contains(*v))
        .collect();

    while let Some(e) = remaining.pop_first() {
        asker.set_phase(Phase::ExistentialDependence);
        // (a) Does e depend on a variable of a known body? Then e is an
        //     existential head of that body.
        let known: Vec<VarId> = body_union(&bodies).to_vec();
        let e_set = VarSet::singleton(e);
        let mut dep_test = |d: &[VarId]| -> Result<bool, LearnError> {
            let ds: VarSet = d.iter().copied().collect();
            Ok(!asker.is_answer(&questions::existential_independence(n, &e_set, &ds))?)
        };
        if let Some(b) = find_one(&known, &mut dep_test)? {
            let body = bodies
                .iter()
                .find(|bs| bs.contains(b))
                .expect("found variable must come from a known body")
                .clone();
            exprs.push(Expr::existential_horn(body, e));
            continue;
        }

        // (b) Discover e's dependents among the unresolved existential
        //     variables.
        let cands: Vec<VarId> = remaining.iter().copied().collect();
        let d = find_all(&cands, &mut dep_test)?;
        if d.is_empty() {
            // Lone existential variable: ∃e.
            exprs.push(Expr::conj(VarSet::singleton(e)));
            continue;
        }

        // (c) Is there a pair of heads within D? (Lemma 3.3.)
        let head = get_head(n, &d, &mut asker)?;
        asker.set_phase(Phase::ExistentialDependence);
        match head {
            None => {
                // At most one head in D: treat e as the head, D as its body
                // (§3.1.3 — semantically equivalent either way).
                let body: VarSet = d.iter().copied().collect();
                exprs.push(Expr::existential_horn(body.clone(), e));
                for v in &d {
                    remaining.remove(v);
                }
                bodies.push(body);
            }
            Some(h1) => {
                // h1 is a head; classify the remaining dependents with
                // pairwise independence questions against h1.
                let mut heads = vec![h1];
                let h1_set = VarSet::singleton(h1);
                for &v in d.iter().filter(|&&v| v != h1) {
                    let vs = VarSet::singleton(v);
                    if asker.is_answer(&questions::existential_independence(n, &h1_set, &vs))? {
                        heads.push(v);
                    }
                }
                let mut body: VarSet = d.iter().copied().collect();
                for h in &heads {
                    body.remove(*h);
                }
                body.insert(e);
                for h in &heads {
                    exprs.push(Expr::existential_horn(body.clone(), *h));
                }
                for v in &d {
                    remaining.remove(v);
                }
                bodies.push(body);
            }
        }
    }

    let query = Query::new(n, exprs).map_err(|e| LearnError::InconsistentOracle {
        detail: format!(
            "learned structurally invalid expressions ({e}); the oracle is not \
             consistent with any complete query of the promised class"
        ),
    })?;
    Ok(LearnOutcome::new(query, asker.into_stats()))
}

/// Algorithm 1: the body of universal head `h`, or `None` if bodyless.
fn find_body_for_universal_head<O: MembershipOracle + ?Sized>(
    n: u16,
    h: VarId,
    bodies: &[VarSet],
    existential: &[VarId],
    asker: &mut Asker<'_, O>,
) -> Result<Option<VarSet>, LearnError> {
    let mut dep_test = |d: &[VarId]| -> Result<bool, LearnError> {
        let ds: VarSet = d.iter().copied().collect();
        asker.is_answer(&questions::universal_dependence(n, h, &ds))
    };

    // Shared body? One binary search over the union of known bodies.
    let known: Vec<VarId> = bodies
        .iter()
        .flat_map(|b| b.iter().collect::<Vec<_>>())
        .collect();
    if let Some(b) = find_one(&known, &mut dep_test)? {
        let body = bodies
            .iter()
            .find(|bs| bs.contains(b))
            .expect("variable must come from a known body")
            .clone();
        return Ok(Some(body));
    }

    // New body: group-test the existential variables outside known bodies
    // (in qhorn-1 a new body is disjoint from every existing one).
    let known_union: VarSet = known.into_iter().collect();
    let cands: Vec<VarId> = existential
        .iter()
        .copied()
        .filter(|v| !known_union.contains(*v))
        .collect();
    let body = find_all(&cands, &mut dep_test)?;
    if body.is_empty() {
        Ok(None)
    } else {
        Ok(Some(body.into_iter().collect()))
    }
}

/// Builds the membership question the paper calls a *universal dependence
/// question* for external callers (re-exported for the experiment
/// binaries).
#[must_use]
pub fn universal_dependence_question(n: u16, h: VarId, vs: &VarSet) -> Obj {
    questions::universal_dependence(n, h, vs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{CountingOracle, QueryOracle};
    use crate::query::equiv::equivalent;
    use crate::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    fn learn(target: &Query) -> LearnOutcome {
        let mut oracle = QueryOracle::new(target.clone());
        learn_qhorn1(target.arity(), &mut oracle, &LearnOptions::default()).unwrap()
    }

    fn assert_learns(target: &Query) {
        let outcome = learn(target);
        assert!(
            equivalent(outcome.query(), target),
            "learned {} but target was {} (normal forms {:?} vs {:?})",
            outcome.query(),
            target,
            outcome.query().normal_form(),
            target.normal_form()
        );
    }

    #[test]
    fn learns_single_variable_queries() {
        assert_learns(&Query::new(1, [Expr::universal_bodyless(v(1))]).unwrap());
        assert_learns(&Query::new(1, [Expr::conj(varset![1])]).unwrap());
    }

    #[test]
    fn learns_fig2_query() {
        // ∀x1x2→x4 ∃x1x2→x5 ∃x3→x6 (Fig. 2).
        let q = Query::new(
            6,
            [
                Expr::universal(varset![1, 2], v(4)),
                Expr::existential_horn(varset![1, 2], v(5)),
                Expr::existential_horn(varset![3], v(6)),
            ],
        )
        .unwrap();
        assert_learns(&q);
    }

    #[test]
    fn learns_partition_construction_example() {
        // §2.1.3: ∀x1 ∀x2 ∃x3→x4 ∃x5x6→x7 from partition x1|x2|x3x4|x5x6x7.
        let q = Query::new(
            7,
            [
                Expr::universal_bodyless(v(1)),
                Expr::universal_bodyless(v(2)),
                Expr::existential_horn(varset![3], v(4)),
                Expr::existential_horn(varset![5, 6], v(7)),
            ],
        )
        .unwrap();
        assert_learns(&q);
    }

    #[test]
    fn learns_shared_bodies_with_mixed_quantifiers() {
        // One body {x1,x2} with universal head x3 and existential heads x4, x5.
        let q = Query::new(
            5,
            [
                Expr::universal(varset![1, 2], v(3)),
                Expr::existential_horn(varset![1, 2], v(4)),
                Expr::existential_horn(varset![1, 2], v(5)),
            ],
        )
        .unwrap();
        assert_learns(&q);
    }

    #[test]
    fn learns_headless_conjunction() {
        let q = Query::new(3, [Expr::conj(varset![1, 2, 3])]).unwrap();
        assert_learns(&q);
    }

    #[test]
    fn learns_all_existential_singletons() {
        let q = Query::new(4, (1..=4).map(|i| Expr::conj(VarSet::singleton(v(i))))).unwrap();
        assert_learns(&q);
    }

    #[test]
    fn learns_two_universal_heads_sharing_a_body() {
        let q = Query::new(
            5,
            [
                Expr::universal(varset![1, 2, 3], v(4)),
                Expr::universal(varset![1, 2, 3], v(5)),
            ],
        )
        .unwrap();
        assert_learns(&q);
    }

    #[test]
    fn learns_every_enumerated_qhorn1_query_n4() {
        // Exhaustive over all distinct complete qhorn-1 queries on 4
        // variables (partition construction).
        let mut checked = 0usize;
        for target in crate::query::generate::enumerate_qhorn1(4) {
            if !target.is_complete() {
                continue;
            }
            assert_learns(&target);
            checked += 1;
        }
        assert!(checked >= 100, "expected a rich universe, got {checked}");
    }

    #[test]
    fn question_count_is_o_n_log_n() {
        // Theorem 3.1: a generous constant times n lg n.
        for n in [8u16, 16, 32] {
            // Adversarial-ish target: parts of size 4 with one universal
            // head, one existential head, two body variables.
            let mut exprs = Vec::new();
            let mut i = 1u16;
            while i + 3 <= n {
                exprs.push(Expr::universal(varset![i, i + 1], v(i + 2)));
                exprs.push(Expr::existential_horn(varset![i, i + 1], v(i + 3)));
                i += 4;
            }
            while i <= n {
                exprs.push(Expr::conj(VarSet::singleton(v(i))));
                i += 1;
            }
            let target = Query::new(n, exprs).unwrap();
            let mut counting = CountingOracle::new(QueryOracle::new(target.clone()));
            let outcome = learn_qhorn1(n, &mut counting, &LearnOptions::default()).unwrap();
            assert!(equivalent(outcome.query(), &target));
            let nf = n as f64;
            let bound = (8.0 * nf * nf.log2() + 8.0 * nf) as usize;
            assert!(
                counting.stats().questions <= bound,
                "n={n}: {} questions > {bound}",
                counting.stats().questions
            );
        }
    }

    #[test]
    fn per_phase_stats_populated() {
        let q = Query::new(
            4,
            [
                Expr::universal(varset![1], v(2)),
                Expr::existential_horn(varset![3], v(4)),
            ],
        )
        .unwrap();
        let outcome = learn(&q);
        let s = outcome.stats();
        assert_eq!(s.phase(Phase::ClassifyHeads), 4, "one per variable");
        assert!(s.phase(Phase::UniversalBodies) > 0);
        assert!(s.phase(Phase::ExistentialDependence) > 0);
        assert_eq!(
            s.questions,
            s.by_phase.values().sum::<usize>(),
            "phase counts partition the total"
        );
    }

    #[test]
    fn budget_is_enforced() {
        let q = Query::new(4, [Expr::conj(varset![1, 2, 3, 4])]).unwrap();
        let mut oracle = QueryOracle::new(q);
        let opts = LearnOptions {
            max_questions: Some(2),
            ..Default::default()
        };
        let err = learn_qhorn1(4, &mut oracle, &opts).unwrap_err();
        assert!(matches!(err, LearnError::BudgetExceeded { asked: 2 }));
    }
}
