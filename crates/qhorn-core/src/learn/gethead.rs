//! `GetHead` (Lemma 3.3, Algorithm 5): locating one existential head
//! variable among the dependents of a variable using independence matrix
//! questions.
//!
//! Setting: `x` is an existential variable whose dependents `D` all belong
//! to one pure existential part with (unknown) body `B` and heads `H`. A
//! matrix question on `S ⊆ D` (Def. 3.3) is an answer iff `S` contains at
//! least two head variables — each head's conjunction `B ∪ {h}` needs a
//! witness tuple, and the tuple dropping `h′ ≠ h` provides one only when
//! `h′` is itself a head.
//!
//! The paper's Algorithm 5 pseudocode leaves boundary behaviour (singleton
//! splits, the `D2` bookkeeping) under-specified; we implement an
//! equivalent head-isolation procedure with the same `O(lg |D|)` matrix-
//! question bound and cross-check it exhaustively against brute force in
//! the tests (see DESIGN.md §3):
//!
//! 1. if `matrix(D)` is a non-answer, `D` holds at most one head — report
//!    "no pair" (`None`), and the caller treats `x` as head with body `D`;
//! 2. otherwise split `D = A ⊎ B`; if either half still answers, recurse
//!    into it;
//! 3. if neither half answers, each holds exactly one head; binary-search
//!    `A` with `B` appended to every probe (`matrix(T ∪ B)` answers iff
//!    `T` contains `A`'s head).

use super::questions;
use super::{Asker, LearnError, Phase};
use crate::oracle::MembershipOracle;
use crate::var::{VarId, VarSet};

/// Finds one existential head variable among the dependents `d` (of some
/// existential variable), or `None` if `d` contains at most one head —
/// in which case the caller may assume the probed variable is itself the
/// head and all of `d` its body (§3.1.3).
///
/// Asks `O(lg |d|)` matrix questions of at most `|d|` tuples each.
pub(crate) fn get_head<O: MembershipOracle + ?Sized>(
    n: u16,
    d: &[VarId],
    asker: &mut Asker<'_, O>,
) -> Result<Option<VarId>, LearnError> {
    asker.set_phase(Phase::MatrixQuestions);
    // A singleton or empty dependent set can never contain two heads.
    if d.len() < 2 {
        return Ok(None);
    }
    if !matrix_answers(n, d.iter(), asker)? {
        return Ok(None);
    }
    isolate(n, d, asker).map(Some)
}

/// Precondition: `s` contains at least two heads. Returns one of them.
fn isolate<O: MembershipOracle + ?Sized>(
    n: u16,
    s: &[VarId],
    asker: &mut Asker<'_, O>,
) -> Result<VarId, LearnError> {
    debug_assert!(s.len() >= 2);
    if s.len() == 2 {
        // Both are heads; return the first.
        return Ok(s[0]);
    }
    let (a, b) = s.split_at(s.len() / 2);
    if a.len() >= 2 && matrix_answers(n, a.iter(), asker)? {
        return isolate(n, a, asker);
    }
    if b.len() >= 2 && matrix_answers(n, b.iter(), asker)? {
        return isolate(n, b, asker);
    }
    // Each half holds exactly one head (together ≥ 2, each < 2 pairs).
    // Binary-search `a` boosted by `b`: matrix(T ∪ b) answers iff T holds
    // a's head, since b contributes exactly one.
    let mut slice = a;
    while slice.len() > 1 {
        let (lo, hi) = slice.split_at(slice.len() / 2);
        slice = if matrix_answers(n, lo.iter().chain(b.iter()), asker)? {
            lo
        } else {
            hi
        };
    }
    Ok(slice[0])
}

fn matrix_answers<'v, O: MembershipOracle + ?Sized>(
    n: u16,
    vars: impl Iterator<Item = &'v VarId>,
    asker: &mut Asker<'_, O>,
) -> Result<bool, LearnError> {
    let set: VarSet = vars.copied().collect();
    asker.is_answer(&questions::matrix(n, &set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::LearnOptions;
    use crate::oracle::{CountingOracle, QueryOracle};
    use crate::query::{Expr, Query};

    /// Builds the oracle for a single pure existential part: body `B`,
    /// heads `H` (conjunctions `B ∪ {h}` for each `h ∈ H`).
    fn part_oracle(n: u16, body: &[u16], heads: &[u16]) -> QueryOracle {
        let body: VarSet = VarSet::from_one_based(body.iter().copied());
        let exprs: Vec<Expr> = heads
            .iter()
            .map(|&h| Expr::existential_horn(body.clone(), VarId::from_one_based(h)))
            .collect();
        QueryOracle::new(Query::new(n, exprs).unwrap())
    }

    fn run_get_head(n: u16, d: &[u16], oracle: &mut QueryOracle) -> Option<VarId> {
        let opts = LearnOptions::default();
        let mut asker = Asker::new(oracle, &opts);
        let dv: Vec<VarId> = d.iter().map(|&i| VarId::from_one_based(i)).collect();
        get_head(n, &dv, &mut asker).unwrap()
    }

    #[test]
    fn two_heads_found() {
        // Part: body {x1, x3}, heads {x2, x4}; probing x1's dependents
        // D = {x2, x3, x4}.
        let mut oracle = part_oracle(4, &[1, 3], &[2, 4]);
        let h = run_get_head(4, &[2, 3, 4], &mut oracle).expect("two heads exist");
        assert!(h == VarId::from_one_based(2) || h == VarId::from_one_based(4));
    }

    #[test]
    fn one_head_returns_none() {
        // Part: body {x1, x2, x3}, single head x4; D (dependents of x1)
        // = {x2, x3, x4} has one head → None (caller treats x1 as head).
        let mut oracle = part_oracle(4, &[1, 2, 3], &[4]);
        assert_eq!(run_get_head(4, &[2, 3, 4], &mut oracle), None);
    }

    #[test]
    fn no_heads_returns_none() {
        // Headless conjunction ∃x1x2x3: D = {x2, x3}, zero heads.
        let q = Query::new(3, [Expr::conj(crate::varset![1, 2, 3])]).unwrap();
        let mut oracle = QueryOracle::new(q);
        assert_eq!(run_get_head(3, &[2, 3], &mut oracle), None);
    }

    #[test]
    fn exhaustive_head_positions() {
        // For every placement of ≥2 heads among 6 dependents, get_head
        // returns an actual head.
        let n = 8u16;
        for mask in 0u32..(1 << 6) {
            let heads_in_d: Vec<u16> = (0..6)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| i + 3)
                .collect();
            if heads_in_d.len() < 2 {
                continue;
            }
            let body: Vec<u16> = std::iter::once(1)
                .chain((3..9).filter(|v| !heads_in_d.contains(v)))
                .collect();
            let mut oracle = part_oracle(n, &body, &heads_in_d);
            let d: Vec<u16> = (3..9).collect();
            let h = run_get_head(n, &d, &mut oracle)
                .unwrap_or_else(|| panic!("no head found for heads {heads_in_d:?}"));
            assert!(
                heads_in_d.contains(&h.one_based()),
                "returned {h} is not a head ({heads_in_d:?})"
            );
        }
    }

    #[test]
    fn question_count_is_logarithmic() {
        // Lemma 3.3: O(lg |D|) matrix questions.
        for size in [8usize, 16, 32] {
            let n = (size + 2) as u16;
            // heads at the last two positions of D.
            let heads = [(size + 1) as u16, (size + 2) as u16];
            let body: Vec<u16> = (1..=size as u16).collect();
            let target = {
                let b = VarSet::from_one_based(body.iter().copied());
                Query::new(
                    n,
                    heads
                        .iter()
                        .map(|&h| Expr::existential_horn(b.clone(), VarId::from_one_based(h))),
                )
                .unwrap()
            };
            let mut counting = CountingOracle::new(QueryOracle::new(target));
            let opts = LearnOptions::default();
            let mut asker = Asker::new(&mut counting, &opts);
            let d: Vec<VarId> = (2..=n).map(VarId::from_one_based).collect();
            let h = get_head(n, &d, &mut asker).unwrap().unwrap();
            assert!(heads.contains(&h.one_based()));
            let q = counting.stats().questions;
            let lg = (d.len() as f64).log2().ceil() as usize;
            assert!(q <= 4 * lg + 4, "|D|={}: {q} questions > 4·lg+4", d.len());
        }
    }
}
