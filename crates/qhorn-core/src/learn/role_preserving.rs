//! The role-preserving qhorn learner (§3.2): universal Horn expressions
//! via the body lattice (Theorem 3.5, O(n^{θ+1}) questions) followed by
//! existential conjunctions via the full lattice (Theorem 3.8,
//! O(k·n lg n) questions).

use super::existential::learn_existential_conjunctions;
use super::universal::{classify_universal_heads, learn_universal_horns};
use super::{Asker, LearnError, LearnOptions, LearnOutcome};
use crate::oracle::MembershipOracle;
use crate::query::{Expr, Query};

/// Learns a complete role-preserving qhorn query over `n` variables from
/// membership questions (§3.2).
///
/// The oracle must answer consistently with some complete role-preserving
/// target; the returned query is semantically equivalent to it and is
/// already in normal form (dominant universal expressions, dominant closed
/// conjunctions). Learning qhorn-1 targets with this learner also works —
/// qhorn-1 ⊂ role-preserving — at a higher question cost.
///
/// # Errors
/// [`LearnError::BudgetExceeded`] if [`LearnOptions::max_questions`] runs
/// out.
pub fn learn_role_preserving<O: MembershipOracle + ?Sized>(
    n: u16,
    oracle: &mut O,
    opts: &LearnOptions,
) -> Result<LearnOutcome, LearnError> {
    if opts.detect_free_variables {
        return super::free_vars::learn_with_free_vars(n, oracle, opts, |m, sub, o| {
            learn_role_preserving_complete(m, sub, o)
        });
    }
    learn_role_preserving_complete(n, oracle, opts)
}

/// [`learn_role_preserving`] without the free-variable pre-pass.
pub fn learn_role_preserving_complete<O: MembershipOracle + ?Sized>(
    n: u16,
    oracle: &mut O,
    opts: &LearnOptions,
) -> Result<LearnOutcome, LearnError> {
    let mut asker = Asker::new(oracle, opts);

    // §3.2.1 — universal part.
    let heads = classify_universal_heads(n, &mut asker)?;
    let universals = learn_universal_horns(n, &heads, &mut asker)?;

    // §3.2.2 — existential part on the violation-filtered lattice.
    let conjunctions = learn_existential_conjunctions(n, &universals, &mut asker)?;

    let exprs = universals
        .into_iter()
        .map(|(b, h)| Expr::universal(b, h))
        .chain(conjunctions.into_iter().map(Expr::conj))
        .collect::<Vec<_>>();
    let query = Query::new(n, exprs).map_err(|e| LearnError::InconsistentOracle {
        detail: format!(
            "learned structurally invalid expressions ({e}); the oracle is not \
             consistent with any complete query of the promised class"
        ),
    })?;
    Ok(LearnOutcome::new(query, asker.into_stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::Phase;
    use crate::oracle::{CountingOracle, QueryOracle};
    use crate::query::equiv::equivalent;
    use crate::var::{VarId, VarSet};
    use crate::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    fn assert_learns(target: &Query) -> LearnOutcome {
        let mut oracle = QueryOracle::new(target.clone());
        let outcome =
            learn_role_preserving(target.arity(), &mut oracle, &LearnOptions::default()).unwrap();
        assert!(
            equivalent(outcome.query(), target),
            "learned {} for target {} (normal forms {:?} vs {:?})",
            outcome.query(),
            target,
            outcome.query().normal_form(),
            target.normal_form()
        );
        outcome
    }

    #[test]
    fn learns_the_paper_example() {
        // §3.2 / §4.2 running example with θ = 2.
        let q = crate::query::tests::paper_example();
        let outcome = assert_learns(&q);
        let s = outcome.stats();
        assert_eq!(s.phase(Phase::ClassifyHeads), 6);
        assert!(s.phase(Phase::UniversalBodies) > 0);
        assert!(s.phase(Phase::ExistentialLattice) > 0);
    }

    #[test]
    fn learns_section_2_1_4_example() {
        // ∀x1x4→x5 ∀x3x4→x5 ∀x2x4→x6 ∃x1x2x3 ∃x1x2x5x6.
        let q = Query::new(
            6,
            [
                Expr::universal(varset![1, 4], v(5)),
                Expr::universal(varset![3, 4], v(5)),
                Expr::universal(varset![2, 4], v(6)),
                Expr::conj(varset![1, 2, 3]),
                Expr::conj(varset![1, 2, 5, 6]),
            ],
        )
        .unwrap();
        assert_learns(&q);
    }

    #[test]
    fn learns_every_two_variable_role_preserving_query() {
        // Exhaustive: every complete role-preserving query on 2 variables.
        let mut count = 0;
        for target in crate::query::generate::enumerate_role_preserving(2, true) {
            assert_learns(&target);
            count += 1;
        }
        assert!(count >= 7, "expected the Fig. 7 universe, got {count}");
    }

    #[test]
    fn learns_every_three_variable_role_preserving_query() {
        // Exhaustive on 3 variables — this is the heavyweight correctness
        // test for the whole §3.2 pipeline.
        for target in crate::query::generate::enumerate_role_preserving(3, true) {
            assert_learns(&target);
        }
    }

    #[test]
    fn learns_qhorn1_targets_too() {
        for target in crate::query::generate::enumerate_qhorn1(3) {
            if !target.is_complete() {
                continue;
            }
            assert_learns(&target);
        }
    }

    #[test]
    fn output_is_in_normal_form() {
        let q = crate::query::tests::paper_example();
        let mut oracle = QueryOracle::new(q.clone());
        let outcome = learn_role_preserving(6, &mut oracle, &LearnOptions::default()).unwrap();
        let nf = q.normal_form();
        assert_eq!(outcome.query().normal_form(), nf);
        // Expressions are exactly the dominant ones.
        assert_eq!(
            outcome.query().exprs().len(),
            nf.universals().len() + nf.existentials().len()
        );
    }

    #[test]
    fn question_budget_respected() {
        let q = crate::query::tests::paper_example();
        let mut oracle = QueryOracle::new(q);
        let opts = LearnOptions {
            max_questions: Some(5),
            ..Default::default()
        };
        let err = learn_role_preserving(6, &mut oracle, &opts).unwrap_err();
        assert!(matches!(err, LearnError::BudgetExceeded { asked: 5 }));
    }

    #[test]
    fn free_variable_option_composes() {
        // x2 unmentioned.
        let target = Query::new(
            4,
            [Expr::universal(varset![1], v(3)), Expr::conj(varset![4])],
        )
        .unwrap();
        let opts = LearnOptions {
            detect_free_variables: true,
            ..Default::default()
        };
        let mut oracle = QueryOracle::new(target.clone());
        let outcome = learn_role_preserving(4, &mut oracle, &opts).unwrap();
        assert!(equivalent(outcome.query(), &target));
    }

    #[test]
    fn high_causal_density_target() {
        // θ = 3 on one head.
        let q = Query::new(
            7,
            [
                Expr::universal(varset![1, 2], v(7)),
                Expr::universal(varset![3, 4], v(7)),
                Expr::universal(varset![5, 6], v(7)),
            ],
        )
        .unwrap();
        assert_learns(&q);
    }

    #[test]
    fn conjunction_containing_heads() {
        // Existential conjunctions may mention universal heads.
        let q = Query::new(
            4,
            [
                Expr::universal(varset![1], v(4)),
                Expr::conj(varset![2, 4]),
                Expr::conj(varset![3]),
            ],
        )
        .unwrap();
        assert_learns(&q);
    }

    #[test]
    fn question_complexity_stays_polynomial() {
        // k·n lg n + n^{θ+1} envelope for a θ=1, k=O(n/3) family.
        for n in [9u16, 15, 21] {
            let third = n / 3;
            let mut exprs = vec![];
            // heads: last `third` variables, each with a 2-variable body.
            for i in 0..third {
                exprs.push(Expr::universal(
                    VarSet::from_indices([2 * i, 2 * i + 1]),
                    VarId(2 * third + i),
                ));
            }
            let q = Query::new(n, exprs).unwrap();
            let mut counting = CountingOracle::new(QueryOracle::new(q.clone()));
            let outcome =
                learn_role_preserving(n, &mut counting, &LearnOptions::default()).unwrap();
            assert!(equivalent(outcome.query(), &q));
            let asked = counting.stats().questions;
            let nf = n as f64;
            let bound = (4.0 * nf * nf * nf.log2()) as usize + 50;
            assert!(asked <= bound, "n={n}: {asked} > {bound}");
        }
    }
}
