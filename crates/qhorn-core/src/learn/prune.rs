//! `Prune` (Algorithm 8): shrinking a tuple set to a minimal subset that —
//! together with the other kept tuples — still dominates every
//! distinguishing tuple of the target.
//!
//! The printed Algorithm 8 can loop on singleton splits (see DESIGN.md §3);
//! we implement the standard recursive group-testing minimization with the
//! same O(lg n) questions per kept tuple:
//!
//! ```text
//! needed(T, O):                      # precondition: Ask(T ∪ O) = answer
//!   if Ask(O) = answer: return ∅     # nothing in T is needed
//!   if |T| = 1:        return T      # the single tuple is needed
//!   split T into A, B
//!   Ka = needed(A, O ∪ B)            # minimize A while B is present
//!   Kb = needed(B, O ∪ Ka)           # then minimize B given only Ka
//!   return Ka ∪ Kb
//! ```
//!
//! Because "the question is an answer" is monotone in the tuple set (adding
//! tuples can only satisfy more existential conjunctions, and no lattice
//! tuple in play violates a universal expression), the result is
//! 1-minimal: dropping any kept tuple flips the question to a non-answer.

use super::{Asker, LearnError};
use crate::object::Obj;
use crate::oracle::MembershipOracle;
use crate::tuple::BoolTuple;
use std::collections::BTreeSet;

/// Minimizes `t` against the fixed context `others`: returns a minimal
/// `K ⊆ t` such that the membership question `K ∪ others` is still an
/// answer.
///
/// Precondition: the question `t ∪ others` is an answer (callers in
/// Algorithm 7 have just observed this).
pub(crate) fn prune<O: MembershipOracle + ?Sized>(
    n: u16,
    t: &[BoolTuple],
    others: &BTreeSet<BoolTuple>,
    asker: &mut Asker<'_, O>,
) -> Result<Vec<BoolTuple>, LearnError> {
    needed(n, t, others, asker)
}

fn needed<O: MembershipOracle + ?Sized>(
    n: u16,
    t: &[BoolTuple],
    others: &BTreeSet<BoolTuple>,
    asker: &mut Asker<'_, O>,
) -> Result<Vec<BoolTuple>, LearnError> {
    if t.is_empty() {
        return Ok(Vec::new());
    }
    if asker.is_answer(&Obj::new(n, others.iter().cloned()))? {
        return Ok(Vec::new());
    }
    if t.len() == 1 {
        return Ok(t.to_vec());
    }
    let (a, b) = t.split_at(t.len() / 2);
    let mut with_b = others.clone();
    with_b.extend(b.iter().cloned());
    let ka = needed(n, a, &with_b, asker)?;
    let mut with_ka = others.clone();
    with_ka.extend(ka.iter().cloned());
    let kb = needed(n, b, &with_ka, asker)?;
    let mut out = ka;
    out.extend(kb);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::LearnOptions;
    use crate::object::Response;
    use crate::oracle::{CountingOracle, FnOracle, MembershipOracle, QueryOracle};
    use crate::query::{Expr, Query};
    use crate::varset;

    /// Coverage oracle: answer iff every "needed" tuple is present.
    fn coverage_oracle(required: Vec<BoolTuple>) -> impl MembershipOracle {
        FnOracle(move |q: &Obj| Response::from_bool(required.iter().all(|r| q.contains(r))))
    }

    #[test]
    fn keeps_exactly_the_required_tuples() {
        let n = 4;
        let all: Vec<BoolTuple> = crate::query::generate::all_tuples(n);
        let required = vec![all[3].clone(), all[9].clone()];
        let mut oracle = coverage_oracle(required.clone());
        let opts = LearnOptions::default();
        let mut asker = Asker::new(&mut oracle, &opts);
        let kept = prune(n, &all, &BTreeSet::new(), &mut asker).unwrap();
        let kept_set: BTreeSet<_> = kept.into_iter().collect();
        assert_eq!(kept_set, required.into_iter().collect());
    }

    #[test]
    fn context_tuples_reduce_what_is_kept() {
        let n = 3;
        let all = crate::query::generate::all_tuples(n);
        let required = vec![all[1].clone(), all[6].clone()];
        let mut oracle = coverage_oracle(required.clone());
        let opts = LearnOptions::default();
        let mut asker = Asker::new(&mut oracle, &opts);
        // all[6] already supplied by the context.
        let others: BTreeSet<_> = [all[6].clone()].into_iter().collect();
        let kept = prune(n, &all, &others, &mut asker).unwrap();
        assert_eq!(kept, vec![all[1].clone()]);
    }

    #[test]
    fn nothing_needed_returns_empty_fast() {
        let n = 3;
        let all = crate::query::generate::all_tuples(n);
        let mut oracle = coverage_oracle(vec![]);
        let opts = LearnOptions::default();
        let mut counting = CountingOracle::new(&mut oracle);
        let mut asker = Asker::new(&mut counting, &opts);
        let kept = prune(n, &all, &BTreeSet::new(), &mut asker).unwrap();
        assert!(kept.is_empty());
        assert_eq!(counting.stats().questions, 1);
    }

    #[test]
    fn question_count_logarithmic_per_kept_tuple() {
        // |T| = 64, 3 required tuples: expect ≲ 3·2·lg 64 + O(1) questions.
        let n = 6;
        let all = crate::query::generate::all_tuples(n);
        let required = vec![all[5].clone(), all[33].clone(), all[60].clone()];
        let mut oracle = coverage_oracle(required);
        let opts = LearnOptions::default();
        let mut counting = CountingOracle::new(&mut oracle);
        let mut asker = Asker::new(&mut counting, &opts);
        let kept = prune(n, &all, &BTreeSet::new(), &mut asker).unwrap();
        assert_eq!(kept.len(), 3);
        let q = counting.stats().questions;
        assert!(q <= 3 * 2 * 6 + 8, "{q} questions for 3 kept of 64");
    }

    #[test]
    fn result_is_one_minimal_for_query_oracles() {
        // Against a real query: pruning level-1 tuples of the paper
        // example. Removing any kept tuple must flip the answer.
        let q = crate::query::tests::paper_example();
        let n = q.arity();
        let top_kids: Vec<BoolTuple> = crate::lattice::non_violating_children(
            &BoolTuple::all_true(n),
            &q.universal_horns()
                .map(|(b, h)| (b.clone(), h))
                .collect::<Vec<_>>(),
        );
        let mut oracle = QueryOracle::new(q.clone());
        let opts = LearnOptions::default();
        let mut asker = Asker::new(&mut oracle, &opts);
        let kept = prune(n, &top_kids, &BTreeSet::new(), &mut asker).unwrap();
        // Kept set is an answer…
        assert!(q.accepts(&Obj::new(n, kept.iter().cloned())));
        // …and 1-minimal.
        for skip in 0..kept.len() {
            let sub = Obj::new(
                n,
                kept.iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, t)| t.clone()),
            );
            assert!(!q.accepts(&sub), "kept tuple {skip} was unnecessary");
        }
    }

    /// The worked example of §3.2.2, level 1: after pruning the children of
    /// 111111 the paper keeps {111011, 101111, 011111} (some minimal
    /// dominating set; ours must be the same *size* and dominate).
    #[test]
    fn paper_level1_prune_size() {
        let q = crate::query::tests::paper_example();
        let n = q.arity();
        let universals: Vec<_> = q.universal_horns().map(|(b, h)| (b.clone(), h)).collect();
        let kids = crate::lattice::non_violating_children(&BoolTuple::all_true(n), &universals);
        // Children of the top minus violators: 111011, 110111, 101111, 011111.
        assert_eq!(kids.len(), 4);
        let mut oracle = QueryOracle::new(q.clone());
        let opts = LearnOptions::default();
        let mut asker = Asker::new(&mut oracle, &opts);
        let kept = prune(n, &kids, &BTreeSet::new(), &mut asker).unwrap();
        assert_eq!(
            kept.len(),
            3,
            "paper keeps three of the four level-1 tuples"
        );
    }

    #[test]
    fn kernel_oracle_prunes_identically_to_naive_evaluation() {
        // The learner loop must be oblivious to the oracle's evaluation
        // route: pruning against the compiled kernel oracle keeps exactly
        // the tuples that pruning against the naive tuple-at-a-time
        // reference keeps, with the same number of questions.
        use crate::query::eval::reference;
        let q = crate::query::tests::paper_example();
        let n = q.arity();
        let all = crate::query::generate::all_tuples(n);
        let candidates: Vec<BoolTuple> = all
            .iter()
            .filter(|t| t.count_true() >= (n as usize - 1))
            .cloned()
            .collect();

        let opts = LearnOptions::default();
        let mut kernel_oracle = CountingOracle::new(QueryOracle::new(q.clone()));
        let mut asker = Asker::new(&mut kernel_oracle, &opts);
        let kept_kernel = prune(n, &candidates, &BTreeSet::new(), &mut asker).unwrap();

        let naive_q = q.clone();
        let mut naive_oracle = CountingOracle::new(FnOracle(move |obj: &Obj| {
            Response::from_bool(reference::accepts(&naive_q, obj))
        }));
        let mut asker = Asker::new(&mut naive_oracle, &opts);
        let kept_naive = prune(n, &candidates, &BTreeSet::new(), &mut asker).unwrap();

        assert_eq!(kept_kernel, kept_naive);
        assert_eq!(
            kernel_oracle.stats().questions,
            naive_oracle.stats().questions
        );
    }

    #[test]
    fn empty_input_asks_nothing() {
        let q = Query::new(3, [Expr::universal(varset![1], crate::VarId(2))]).unwrap();
        let mut oracle = CountingOracle::new(QueryOracle::new(q));
        let opts = LearnOptions::default();
        let mut asker = Asker::new(&mut oracle, &opts);
        let kept = prune(3, &[], &BTreeSet::new(), &mut asker).unwrap();
        assert!(kept.is_empty());
        assert_eq!(oracle.stats().questions, 0);
    }
}
