//! Learning existential conjunctions via the Boolean lattice (§3.2.2,
//! Algorithm 7, Theorem 3.8): O(k·n lg n) membership questions.
//!
//! After the universal Horn expressions are known, every remaining
//! expression is an existential conjunction, distinguished (Def. 3.5) by
//! the lattice tuple whose true set equals its variables. The learner
//! walks the lattice level by level from the top, keeping a frontier of
//! tuples that dominates all distinguishing tuples:
//!
//! * tuples violating a learned universal Horn expression are removed from
//!   the lattice (their conjunctions are unsatisfiable);
//! * replacing a frontier tuple with its children keeps the question an
//!   answer iff the tuple is not itself distinguishing; a non-answer pins
//!   the tuple as a dominant conjunction;
//! * kept children are pruned ([`super::prune`]) to a minimal dominating
//!   set, giving the O(lg n) questions per surviving tuple of Thm 3.8;
//! * a frontier tuple equal to the head-closure of a learned universal
//!   body is the distinguishing tuple of that expression's guarantee
//!   clause — it is recorded without further questions and its downset is
//!   skipped (the footnote-1 optimization in §3.2.2).

use super::prune::prune;
use super::{Asker, LearnError, Phase};
use crate::lattice::non_violating_children;
use crate::object::Obj;
use crate::oracle::MembershipOracle;
use crate::tuple::BoolTuple;
use crate::var::{VarId, VarSet};
use std::collections::BTreeSet;

/// Learns the dominant existential conjunctions of the target, given its
/// (dominant) universal Horn expressions. Returns closed conjunction
/// variable sets, including surviving guarantee clauses.
pub(crate) fn learn_existential_conjunctions<O: MembershipOracle + ?Sized>(
    n: u16,
    universals: &[(VarSet, VarId)],
    asker: &mut Asker<'_, O>,
) -> Result<Vec<VarSet>, LearnError> {
    asker.set_phase(Phase::ExistentialLattice);

    // Head-closures of the learned universal guarantees: reaching one of
    // these tuples ends the search on that branch (§3.2.2 optimization).
    let guarantee_closures: BTreeSet<VarSet> = universals
        .iter()
        .map(|(b, h)| close_under(&b.with(*h), universals))
        .collect();

    let mut discovered: BTreeSet<BoolTuple> = BTreeSet::new(); // D
    let mut frontier: BTreeSet<BoolTuple> = BTreeSet::new(); // T
    frontier.insert(BoolTuple::all_true(n));

    while !frontier.is_empty() {
        let mut next: BTreeSet<BoolTuple> = BTreeSet::new(); // T′
        let worklist: Vec<BoolTuple> = frontier.iter().cloned().collect();
        let mut remaining = frontier; // shrinks as tuples are processed
        for t in worklist {
            remaining.remove(&t);
            if guarantee_closures.contains(t.true_set()) {
                // Guarantee-clause distinguishing tuple: no question needed,
                // nothing dominant below it.
                discovered.insert(t);
                continue;
            }
            let children = non_violating_children(&t, universals);
            // Ask(D ∪ T ∪ C ∪ T′).
            let question: BTreeSet<BoolTuple> = discovered
                .iter()
                .chain(remaining.iter())
                .chain(children.iter())
                .chain(next.iter())
                .cloned()
                .collect();
            if asker.is_answer(&Obj::new(n, question))? {
                // t is not distinguishing; keep a minimal set of children.
                let context: BTreeSet<BoolTuple> = discovered
                    .iter()
                    .chain(remaining.iter())
                    .chain(next.iter())
                    .cloned()
                    .collect();
                let kept = prune(n, &children, &context, asker)?;
                next.extend(kept);
            } else {
                // The conjunction over t's true set is dominant.
                discovered.insert(t);
            }
        }
        frontier = next;
    }

    Ok(discovered
        .into_iter()
        .map(|t| t.true_set().clone())
        .collect())
}

fn close_under(vars: &VarSet, universals: &[(VarSet, VarId)]) -> VarSet {
    let mut c = vars.clone();
    loop {
        let mut changed = false;
        for (b, h) in universals {
            if !c.contains(*h) && b.is_subset(&c) {
                c.insert(*h);
                changed = true;
            }
        }
        if !changed {
            return c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::LearnOptions;
    use crate::oracle::{CountingOracle, QueryOracle};
    use crate::query::{Expr, Query};
    use crate::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    fn run(target: &Query) -> BTreeSet<VarSet> {
        let mut oracle = QueryOracle::new(target.clone());
        let opts = LearnOptions::default();
        let mut asker = Asker::new(&mut oracle, &opts);
        let universals: Vec<(VarSet, VarId)> =
            target.normal_form().universals().iter().cloned().collect();
        learn_existential_conjunctions(target.arity(), &universals, &mut asker)
            .unwrap()
            .into_iter()
            .collect()
    }

    #[test]
    fn reproduces_section_3_2_2_walkthrough() {
        // The worked example terminates with distinguishing tuples
        // {110011, 100110, 111001, 011011, 011110} = conjunctions
        // ∃x1x2x5x6 ∃x1x4x5 ∃x1x2x3x6 ∃x2x3x5x6 ∃x2x3x4x5.
        let q = crate::query::tests::paper_example();
        let got = run(&q);
        let expected: BTreeSet<VarSet> = [
            varset![1, 2, 5, 6],
            varset![1, 4, 5],
            varset![1, 2, 3, 6],
            varset![2, 3, 5, 6],
            varset![2, 3, 4, 5],
        ]
        .into_iter()
        .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn full_conjunction_only() {
        // Target ∃x1x2x3: the top tuple itself is distinguishing.
        let q = Query::new(3, [Expr::conj(varset![1, 2, 3])]).unwrap();
        assert_eq!(run(&q), [varset![1, 2, 3]].into_iter().collect());
    }

    #[test]
    fn singletons_reach_the_bottom_levels() {
        let q = Query::new(
            3,
            [
                Expr::conj(varset![1]),
                Expr::conj(varset![2]),
                Expr::conj(varset![3]),
            ],
        )
        .unwrap();
        let expected: BTreeSet<VarSet> = [varset![1], varset![2], varset![3]].into_iter().collect();
        assert_eq!(run(&q), expected);
    }

    #[test]
    fn guarantee_clauses_discovered_without_descending() {
        // Pure universal target: the only conjunctions are guarantees.
        let q = Query::new(
            3,
            [Expr::universal(varset![1], v(3)), Expr::conj(varset![2])],
        )
        .unwrap();
        let got = run(&q);
        let expected: BTreeSet<VarSet> = [varset![1, 3], varset![2]].into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn all_bodyless_heads_full_closure() {
        // ∀x1 ∀x2: every child of the top violates; the empty question is a
        // non-answer; the top (= closure of both guarantees) is dominant.
        let q = Query::new(
            2,
            [
                Expr::universal_bodyless(v(1)),
                Expr::universal_bodyless(v(2)),
            ],
        )
        .unwrap();
        assert_eq!(run(&q), [varset![1, 2]].into_iter().collect());
    }

    #[test]
    fn matches_normal_form_for_random_small_targets() {
        // The lattice learner must recover exactly the dominant closed
        // conjunctions (including guarantees) of the normalized target.
        for target in crate::query::generate::enumerate_role_preserving(2, true) {
            let nf = target.normal_form();
            let got = run(&target);
            assert_eq!(
                &got,
                nf.existentials(),
                "target {target}: got {got:?}, expected {:?}",
                nf.existentials()
            );
        }
    }

    #[test]
    fn question_count_o_k_n_log_n() {
        // Thm 3.8 sanity: k disjoint conjunctions over n variables.
        for (n, k) in [(8u16, 2usize), (12, 3), (16, 4)] {
            let per = n as usize / k;
            let exprs: Vec<Expr> = (0..k)
                .map(|i| {
                    let vars: VarSet = ((i * per) as u16..((i + 1) * per) as u16)
                        .map(VarId)
                        .collect();
                    Expr::conj(vars)
                })
                .collect();
            let q = Query::new(n, exprs).unwrap();
            let mut counting = CountingOracle::new(QueryOracle::new(q.clone()));
            let opts = LearnOptions::default();
            let mut asker = Asker::new(&mut counting, &opts);
            let got = learn_existential_conjunctions(n, &[], &mut asker).unwrap();
            assert_eq!(got.len(), k);
            let asked = counting.stats().questions;
            let nf = n as f64;
            let bound = (6.0 * k as f64 * nf * nf.log2()).ceil() as usize + 20;
            assert!(asked <= bound, "n={n} k={k}: {asked} questions > {bound}");
        }
    }
}
