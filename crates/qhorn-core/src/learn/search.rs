//! `Find` and `FindAll` (Algorithms 2 and 3): binary / group-testing search
//! over variables using a "does this subset contain a hit?" predicate
//! derived from membership questions.
//!
//! Both require the predicate to be a *coverage* test: `test(D)` is true
//! iff `D` contains at least one hit. This is exactly what universal
//! dependence questions (Def. 3.1: hits = body variables) and existential
//! independence questions (Def. 3.2: hits = dependents) provide.
//!
//! `find_one` asks `1 + ⌈lg |D|⌉` questions; `find_all` asks
//! `O(|hits| · lg |D|)` questions — the counts behind Lemma 3.2.

use super::LearnError;
use crate::var::VarId;

/// Result alias for predicate calls that may exhaust the question budget.
pub type TestResult = Result<bool, LearnError>;

/// Algorithm 2 (`Find`): returns one hit within `vars`, or `None` if
/// `vars` contains no hit. Asks `test` on `vars` first, then halves.
pub fn find_one(
    vars: &[VarId],
    test: &mut impl FnMut(&[VarId]) -> TestResult,
) -> Result<Option<VarId>, LearnError> {
    if vars.is_empty() || !test(vars)? {
        return Ok(None);
    }
    let mut slice = vars;
    while slice.len() > 1 {
        let (a, b) = slice.split_at(slice.len() / 2);
        // A hit is known to be in `slice`; if not in `a` it must be in `b`.
        slice = if test(a)? { a } else { b };
    }
    Ok(Some(slice[0]))
}

/// Algorithm 3 (`FindAll`): returns every hit within `vars`, in input
/// order, via group testing.
pub fn find_all(
    vars: &[VarId],
    test: &mut impl FnMut(&[VarId]) -> TestResult,
) -> Result<Vec<VarId>, LearnError> {
    if vars.is_empty() || !test(vars)? {
        return Ok(Vec::new());
    }
    if vars.len() == 1 {
        return Ok(vec![vars[0]]);
    }
    let (a, b) = vars.split_at(vars.len() / 2);
    let mut hits = find_all(a, test)?;
    hits.extend(find_all(b, test)?);
    Ok(hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn vars(n: u16) -> Vec<VarId> {
        (0..n).map(VarId).collect()
    }

    fn subset_test<'a>(
        hits: &'a [u16],
        counter: &'a Cell<usize>,
    ) -> impl FnMut(&[VarId]) -> TestResult + 'a {
        move |d: &[VarId]| {
            counter.set(counter.get() + 1);
            Ok(d.iter().any(|v| hits.contains(&v.0)))
        }
    }

    #[test]
    fn find_one_locates_a_hit() {
        let count = Cell::new(0);
        let found = find_one(&vars(16), &mut subset_test(&[11], &count)).unwrap();
        assert_eq!(found, Some(VarId(11)));
        assert!(
            count.get() <= 1 + 4,
            "O(lg n) questions, got {}",
            count.get()
        );
    }

    #[test]
    fn find_one_none_when_no_hit() {
        let count = Cell::new(0);
        let found = find_one(&vars(16), &mut subset_test(&[], &count)).unwrap();
        assert_eq!(found, None);
        assert_eq!(
            count.get(),
            1,
            "one question suffices to rule everything out"
        );
    }

    #[test]
    fn find_one_empty_domain_asks_nothing() {
        let count = Cell::new(0);
        let found = find_one(&[], &mut subset_test(&[3], &count)).unwrap();
        assert_eq!(found, None);
        assert_eq!(count.get(), 0);
    }

    #[test]
    fn find_all_collects_every_hit() {
        let count = Cell::new(0);
        let hits = [2u16, 7, 8, 15];
        let found = find_all(&vars(16), &mut subset_test(&hits, &count)).unwrap();
        assert_eq!(found, vec![VarId(2), VarId(7), VarId(8), VarId(15)]);
        // O(|hits| lg n): generous constant.
        assert!(
            count.get() <= 4 * 2 * 5,
            "too many questions: {}",
            count.get()
        );
    }

    #[test]
    fn find_all_no_hits_single_question() {
        let count = Cell::new(0);
        let found = find_all(&vars(64), &mut subset_test(&[], &count)).unwrap();
        assert!(found.is_empty());
        assert_eq!(count.get(), 1);
    }

    #[test]
    fn find_all_all_hits() {
        let count = Cell::new(0);
        let all: Vec<u16> = (0..8).collect();
        let found = find_all(&vars(8), &mut subset_test(&all, &count)).unwrap();
        assert_eq!(found.len(), 8);
    }

    #[test]
    fn errors_propagate() {
        let mut failing =
            |_: &[VarId]| -> TestResult { Err(LearnError::BudgetExceeded { asked: 0 }) };
        assert!(find_one(&vars(4), &mut failing).is_err());
        assert!(find_all(&vars(4), &mut failing).is_err());
    }

    #[test]
    fn find_one_exhaustive_positions() {
        // The search must find the hit wherever it is, for every size.
        for n in 1..=20u16 {
            for hit in 0..n {
                let count = Cell::new(0);
                let found = find_one(&vars(n), &mut subset_test(&[hit], &count)).unwrap();
                assert_eq!(found, Some(VarId(hit)), "n={n} hit={hit}");
            }
        }
    }
}
