//! Objects — sets of Boolean tuples; membership questions.
//!
//! An [`Obj`] is one element of the nested relation in the Boolean domain
//! (a "box of chocolates", §2). Because queries quantify over *sets* of
//! tuples, duplicate tuples never change a query's value; `Obj` therefore
//! stores a sorted, deduplicated tuple list and two objects are equal iff
//! they contain the same tuple set.
//!
//! A **membership question** (§2.1.2) *is* an object: the learner shows it
//! to the user, who labels it an answer or a non-answer. We use `Obj` for
//! both roles.

use crate::tuple::BoolTuple;
use std::fmt;

/// A set of Boolean tuples over a common arity `n`.
///
/// May be empty (the paper's footnote 1 permits empty-set questions when
/// guarantee clauses are relaxed).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Obj {
    n: u16,
    tuples: Vec<BoolTuple>,
}

#[cfg(feature = "json")]
mod json {
    use super::{Obj, Response};
    use crate::tuple::BoolTuple;
    use qhorn_json::{FromJson, Json, JsonError, ToJson};

    impl ToJson for Obj {
        fn to_json(&self) -> Json {
            Json::object([("n", self.n.to_json()), ("tuples", self.tuples.to_json())])
        }
    }

    impl FromJson for Obj {
        fn from_json(j: &Json) -> Result<Self, JsonError> {
            let n = u16::from_json(j.field("n")?)?;
            let tuples = Vec::<BoolTuple>::from_json(j.field("tuples")?)?;
            for t in &tuples {
                if t.arity() != n {
                    return Err(JsonError::msg(format!(
                        "tuple arity {} inside object of arity {n}",
                        t.arity()
                    )));
                }
            }
            // `Obj::new` re-sorts and deduplicates, keeping equality
            // structural after a round trip.
            Ok(Obj::new(n, tuples))
        }
    }

    impl ToJson for Response {
        fn to_json(&self) -> Json {
            Json::Str(
                match self {
                    Response::Answer => "Answer",
                    Response::NonAnswer => "NonAnswer",
                }
                .to_string(),
            )
        }
    }

    impl FromJson for Response {
        fn from_json(j: &Json) -> Result<Self, JsonError> {
            match j.as_str() {
                Some("Answer") => Ok(Response::Answer),
                Some("NonAnswer") => Ok(Response::NonAnswer),
                _ => Err(JsonError::msg("expected \"Answer\" or \"NonAnswer\"")),
            }
        }
    }
}

impl Obj {
    /// Builds an object from tuples, sorting and deduplicating.
    ///
    /// # Panics
    /// Panics if any tuple's arity differs from `n`.
    #[must_use]
    pub fn new<I: IntoIterator<Item = BoolTuple>>(n: u16, tuples: I) -> Self {
        let mut ts: Vec<BoolTuple> = tuples.into_iter().collect();
        for t in &ts {
            assert_eq!(
                t.arity(),
                n,
                "tuple {t} has arity {} but object arity is {n}",
                t.arity()
            );
        }
        ts.sort_unstable();
        ts.dedup();
        Obj { n, tuples: ts }
    }

    /// The empty object over `n` variables.
    #[must_use]
    pub fn empty(n: u16) -> Self {
        Obj {
            n,
            tuples: Vec::new(),
        }
    }

    /// Parses a whitespace/comma-separated list of bitstrings, e.g.
    /// `Obj::from_bits("111011, 110111")`.
    ///
    /// # Panics
    /// Panics on malformed bitstrings or mixed arities.
    #[must_use]
    pub fn from_bits(s: &str) -> Self {
        let tuples: Vec<BoolTuple> = s
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|p| !p.is_empty())
            .map(BoolTuple::from_bits)
            .collect();
        let n = tuples.first().map(BoolTuple::arity).expect(
            "Obj::from_bits requires at least one tuple; use Obj::empty for the empty object",
        );
        Obj::new(n, tuples)
    }

    /// Arity (number of Boolean variables) of the object's tuples.
    #[must_use]
    pub fn arity(&self) -> u16 {
        self.n
    }

    /// Number of distinct tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff the object contains no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples, sorted and deduplicated.
    #[must_use]
    pub fn tuples(&self) -> &[BoolTuple] {
        &self.tuples
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, t: &BoolTuple) -> bool {
        self.tuples.binary_search(t).is_ok()
    }

    /// A copy of the object with `t` added.
    #[must_use]
    pub fn with_tuple(&self, t: BoolTuple) -> Self {
        assert_eq!(t.arity(), self.n);
        let mut tuples = self.tuples.clone();
        if let Err(pos) = tuples.binary_search(&t) {
            tuples.insert(pos, t);
        }
        Obj { n: self.n, tuples }
    }

    /// A copy of the object with `t` removed.
    #[must_use]
    pub fn without_tuple(&self, t: &BoolTuple) -> Self {
        let mut tuples = self.tuples.clone();
        if let Ok(pos) = tuples.binary_search(t) {
            tuples.remove(pos);
        }
        Obj { n: self.n, tuples }
    }

    /// Union of two objects' tuple sets.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    #[must_use]
    pub fn union(&self, other: &Obj) -> Self {
        assert_eq!(self.n, other.n, "arity mismatch in Obj::union");
        Obj::new(
            self.n,
            self.tuples.iter().chain(other.tuples.iter()).cloned(),
        )
    }

    /// `true` iff some tuple has all of `vs` true — evaluates `∃t ∈ S (∧vs)`.
    #[must_use]
    pub fn some_tuple_satisfies(&self, vs: &crate::VarSet) -> bool {
        self.tuples.iter().any(|t| t.satisfies_all(vs))
    }
}

impl fmt::Display for Obj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Obj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// The user's label for a membership question (§2.1.2): one bit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Response {
    /// The object satisfies the user's intended query.
    Answer,
    /// The object does not satisfy the user's intended query.
    NonAnswer,
}

impl Response {
    /// Converts from a Boolean (`true` → `Answer`).
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Response::Answer
        } else {
            Response::NonAnswer
        }
    }

    /// `true` iff this is `Answer`.
    #[must_use]
    pub fn is_answer(self) -> bool {
        matches!(self, Response::Answer)
    }

    /// The opposite label.
    #[must_use]
    pub fn negate(self) -> Self {
        match self {
            Response::Answer => Response::NonAnswer,
            Response::NonAnswer => Response::Answer,
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Answer => f.write_str("answer"),
            Response::NonAnswer => f.write_str("non-answer"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let o = Obj::new(
            3,
            [
                BoolTuple::from_bits("110"),
                BoolTuple::from_bits("011"),
                BoolTuple::from_bits("110"),
            ],
        );
        assert_eq!(o.len(), 2);
        let p = Obj::from_bits("011 110");
        assert_eq!(o, p, "order and duplicates do not affect identity");
    }

    #[test]
    fn from_bits_with_commas() {
        let o = Obj::from_bits("111011, 110111");
        assert_eq!(o.arity(), 6);
        assert_eq!(o.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mixed_arity_rejected() {
        let _ = Obj::new(
            3,
            [BoolTuple::from_bits("110"), BoolTuple::from_bits("1100")],
        );
    }

    #[test]
    fn empty_object() {
        let o = Obj::empty(4);
        assert!(o.is_empty());
        assert_eq!(o.arity(), 4);
        assert_eq!(o.to_string(), "{}");
    }

    #[test]
    fn with_without_tuple() {
        let o = Obj::from_bits("110");
        let o2 = o.with_tuple(BoolTuple::from_bits("011"));
        assert_eq!(o2.len(), 2);
        assert!(o2.contains(&BoolTuple::from_bits("011")));
        let o3 = o2.without_tuple(&BoolTuple::from_bits("110"));
        assert_eq!(o3, Obj::from_bits("011"));
        assert_eq!(o.len(), 1, "functional updates");
    }

    #[test]
    fn union_dedups() {
        let a = Obj::from_bits("110 011");
        let b = Obj::from_bits("011 101");
        assert_eq!(a.union(&b).len(), 3);
    }

    #[test]
    fn some_tuple_satisfies_is_existential_conjunction() {
        use crate::varset;
        let o = Obj::from_bits("110 011");
        assert!(o.some_tuple_satisfies(&varset![1, 2]));
        assert!(!o.some_tuple_satisfies(&varset![1, 3]));
        assert!(
            o.some_tuple_satisfies(&crate::VarSet::new()),
            "empty conj trivially holds"
        );
        assert!(
            !Obj::empty(3).some_tuple_satisfies(&crate::VarSet::new()),
            "but not on empty objects"
        );
    }

    #[test]
    fn response_helpers() {
        assert!(Response::from_bool(true).is_answer());
        assert_eq!(Response::Answer.negate(), Response::NonAnswer);
        assert_eq!(Response::Answer.to_string(), "answer");
        assert_eq!(Response::NonAnswer.to_string(), "non-answer");
    }
}
