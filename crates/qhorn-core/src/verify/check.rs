//! Running a verification set against a user (§4): the query is correct
//! iff the user agrees with every expected label.

use super::set::{QuestionKind, VerificationQuestion, VerificationSet};
use crate::object::{Obj, Response};
use crate::oracle::{CompiledOracle, MembershipOracle};
use crate::query::Query;

/// A disagreement between the given query and the user's intent.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Discrepancy {
    /// Index of the question within the verification set.
    pub index: usize,
    /// Fig. 6 family of the failing question.
    pub kind: QuestionKind,
    /// The label the given query implies.
    pub expected: Response,
    /// The label the user gave.
    pub got: Response,
    /// The question itself.
    pub question: Obj,
    /// Provenance of the question.
    pub about: String,
}

/// Result of running a verification set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerificationOutcome {
    /// The user agreed with every question: the given query matches the
    /// intent (within role-preserving qhorn, by Theorem 4.2).
    Verified {
        /// Number of membership questions asked.
        questions: usize,
    },
    /// The user disagreed somewhere: the given query is not the intent.
    Refuted {
        /// Questions asked before (and including) the first disagreement.
        questions: usize,
        /// The first disagreement.
        discrepancy: Discrepancy,
    },
}

impl VerificationOutcome {
    /// `true` for [`VerificationOutcome::Verified`].
    #[must_use]
    pub fn is_verified(&self) -> bool {
        matches!(self, VerificationOutcome::Verified { .. })
    }

    /// The number of membership questions asked.
    #[must_use]
    pub fn questions(&self) -> usize {
        match self {
            VerificationOutcome::Verified { questions }
            | VerificationOutcome::Refuted { questions, .. } => *questions,
        }
    }
}

impl VerificationSet {
    /// Presents the verification questions to `user` in order, stopping at
    /// the first disagreement.
    pub fn verify<O: MembershipOracle + ?Sized>(&self, user: &mut O) -> VerificationOutcome {
        for (index, item) in self.questions().iter().enumerate() {
            let got = user.ask(&item.question);
            if got != item.expected {
                return VerificationOutcome::Refuted {
                    questions: index + 1,
                    discrepancy: discrepancy_of(index, item, got),
                };
            }
        }
        VerificationOutcome::Verified {
            questions: self.len(),
        }
    }

    /// Presents *all* questions regardless of disagreements, returning
    /// every discrepancy (useful for diagnosis; `verify` stops early).
    pub fn verify_all<O: MembershipOracle + ?Sized>(&self, user: &mut O) -> Vec<Discrepancy> {
        self.questions()
            .iter()
            .enumerate()
            .filter_map(|(index, item)| {
                let got = user.ask(&item.question);
                (got != item.expected).then(|| discrepancy_of(index, item, got))
            })
            .collect()
    }

    /// Runs the set against a **known** intent query (tests, simulations,
    /// what-if analyses), compiled once through the kernel so every
    /// question is a batch of word checks.
    pub fn verify_query(&self, intent: &Query) -> VerificationOutcome {
        self.verify(&mut CompiledOracle::new(intent.clone()))
    }

    /// [`VerificationSet::verify_all`] against a known intent query.
    pub fn verify_all_query(&self, intent: &Query) -> Vec<Discrepancy> {
        self.verify_all(&mut CompiledOracle::new(intent.clone()))
    }
}

fn discrepancy_of(index: usize, item: &VerificationQuestion, got: Response) -> Discrepancy {
    Discrepancy {
        index,
        kind: item.kind,
        expected: item.expected,
        got,
        question: item.question.clone(),
        about: item.about.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::QueryOracle;
    use crate::query::equiv::equivalent;
    use crate::query::generate::enumerate_role_preserving;
    use crate::query::{Expr, Query};
    use crate::varset;

    #[test]
    fn matching_intent_verifies() {
        let q = crate::query::tests::paper_example();
        let set = VerificationSet::build(&q).unwrap();
        let mut user = QueryOracle::new(q);
        let outcome = set.verify(&mut user);
        assert!(outcome.is_verified());
        assert_eq!(outcome.questions(), set.len());
    }

    #[test]
    fn theorem_4_2_completeness_on_two_variables() {
        // For every ordered pair of semantically different role-preserving
        // queries on two variables, verification of `given` against a user
        // intending `intended` must refute (this reproduces the existence
        // claims behind Fig. 8).
        let all = enumerate_role_preserving(2, true);
        let mut pairs = 0;
        for given in &all {
            let set = VerificationSet::build(given).unwrap();
            for intended in &all {
                if equivalent(given, intended) {
                    continue;
                }
                let outcome = set.verify_query(intended);
                assert!(
                    !outcome.is_verified(),
                    "verification failed to distinguish given {given} from intended {intended}"
                );
                pairs += 1;
            }
        }
        assert!(pairs > 30, "expected a dense pair matrix, got {pairs}");
    }

    #[test]
    fn lemma_4_4_smaller_intended_body_caught_by_a2() {
        // given ∀x1x2→x3, intended ∀x1→x3: A2 must catch it.
        let given = Query::new(3, [Expr::universal(varset![1, 2], crate::VarId(2))]).unwrap();
        let intended = Query::new(3, [Expr::universal(varset![1], crate::VarId(2))]).unwrap();
        let set = VerificationSet::build(&given).unwrap();
        let discrepancies = set.verify_all_query(&intended);
        assert!(discrepancies.iter().any(|d| d.kind == QuestionKind::A2));
    }

    #[test]
    fn lemma_4_5_larger_intended_body_caught_by_n2() {
        let given = Query::new(3, [Expr::universal(varset![1], crate::VarId(2))]).unwrap();
        let intended = Query::new(3, [Expr::universal(varset![1, 2], crate::VarId(2))]).unwrap();
        let set = VerificationSet::build(&given).unwrap();
        let discrepancies = set.verify_all_query(&intended);
        assert!(discrepancies.iter().any(|d| d.kind == QuestionKind::N2));
    }

    #[test]
    fn lemma_4_7_hidden_head_caught_by_a4() {
        // given ∃x1x2 (no heads), intended ∀x1 ∃x2: x1 is secretly a head.
        let given = Query::new(2, [Expr::conj(varset![1, 2])]).unwrap();
        let intended = Query::new(
            2,
            [
                Expr::universal_bodyless(crate::VarId(0)),
                Expr::conj(varset![2]),
            ],
        )
        .unwrap();
        let set = VerificationSet::build(&given).unwrap();
        let discrepancies = set.verify_all_query(&intended);
        assert!(discrepancies.iter().any(|d| d.kind == QuestionKind::A4));
    }

    #[test]
    fn lemma_4_6_missing_incomparable_body_caught_by_a3() {
        // given: ∀x3x4→x5 ∃x2x3x4 (so ∃x2x3x4x5 dominates the guarantee);
        // intended additionally has the incomparable body ∀x2x4→x5.
        let v5 = crate::VarId::from_one_based(5);
        let given = Query::new(
            5,
            [
                Expr::universal(varset![3, 4], v5),
                Expr::conj(varset![2, 3, 4]),
                Expr::conj(varset![1]),
            ],
        )
        .unwrap();
        let intended = Query::new(
            5,
            [
                Expr::universal(varset![3, 4], v5),
                Expr::universal(varset![2, 4], v5),
                Expr::conj(varset![2, 3, 4]),
                Expr::conj(varset![1]),
            ],
        )
        .unwrap();
        let set = VerificationSet::build(&given).unwrap();
        let discrepancies = set.verify_all_query(&intended);
        assert!(
            discrepancies.iter().any(|d| d.kind == QuestionKind::A3),
            "discrepancies: {discrepancies:?}"
        );
    }

    #[test]
    fn verify_stops_early_verify_all_does_not() {
        let given = Query::new(2, [Expr::conj(varset![1, 2])]).unwrap();
        let intended = Query::new(2, [Expr::conj(varset![1]), Expr::conj(varset![2])]).unwrap();
        let set = VerificationSet::build(&given).unwrap();
        let outcome = set.verify(&mut QueryOracle::new(intended.clone()));
        assert!(!outcome.is_verified());
        assert!(outcome.questions() <= set.len());
        let all = set.verify_all(&mut QueryOracle::new(intended));
        assert!(!all.is_empty());
    }
}
