//! Query verification (§4): deciding whether a *given* role-preserving
//! query matches the user's intent with O(k) membership questions.
//!
//! Learning is a search problem; verification is the decision problem. For
//! a given query `qg` the verifier builds a **verification set** — the six
//! question families of Fig. 6 — with the property (Theorem 4.2) that any
//! role-preserving intent `qi` semantically different from `qg` disagrees
//! with `qg` on at least one question in the set.
//!
//! ```
//! use qhorn_core::{verify::VerificationSet, oracle::QueryOracle, Expr, Query, VarId, varset};
//!
//! let given = Query::new(2, [Expr::universal(varset![1], VarId::from_one_based(2))]).unwrap();
//! let set = VerificationSet::build(&given).unwrap();
//!
//! // A user who intended exactly `given` confirms every question…
//! let mut same = QueryOracle::new(given.clone());
//! assert!(set.verify(&mut same).is_verified());
//!
//! // …while a user who intended something else is caught.
//! let other = Query::new(2, [Expr::conj(varset![1, 2])]).unwrap();
//! let mut different = QueryOracle::new(other);
//! assert!(!set.verify(&mut different).is_verified());
//! ```

mod check;
mod set;

pub use check::{Discrepancy, VerificationOutcome};
pub use set::{QuestionKind, VerificationQuestion, VerificationSet};
