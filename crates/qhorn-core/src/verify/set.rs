//! Verification-set construction — the six membership-question families of
//! Fig. 6.
//!
//! All questions are built from the *normalized* given query (dominant
//! expressions only, §4.1). Expected labels:
//!
//! | kind | expected    | detects (Thm 4.2)                                   |
//! |------|-------------|------------------------------------------------------|
//! | A1   | answer      | intent with extra/incomparable conjunctions (Lem 4.3) |
//! | N1   | non-answer  | intent with more specific conjunctions (Lem 4.3)      |
//! | A2   | answer      | intent with a smaller body for a head (Lem 4.4)       |
//! | N2   | non-answer  | intent with a larger body for a head (Lem 4.5)        |
//! | A3   | answer      | intent with an extra incomparable body (Lem 4.6)      |
//! | A4   | answer      | intent where a non-head is actually a head (Lem 4.7)  |

use crate::kernel::CompiledQuery;
use crate::lattice::{choice_product, violates_any};
use crate::object::{Obj, Response};
use crate::query::classes::{validate_role_preserving, ClassError};
use crate::query::distinguish::{existential_tuple, universal_tuple};
use crate::query::{NormalForm, Query};
use crate::tuple::BoolTuple;
use crate::var::{VarId, VarSet};
use std::fmt;

/// Which Fig. 6 family a verification question belongs to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum QuestionKind {
    /// All dominant existential distinguishing tuples in one object.
    A1,
    /// One dominant existential tuple replaced by its children.
    N1,
    /// All-true tuple plus the children of a universal distinguishing tuple.
    A2,
    /// All-true tuple plus a universal distinguishing tuple.
    N2,
    /// Search roots for additional bodies inside a dominating conjunction.
    A3,
    /// All-true tuple plus one almost-true tuple per non-head variable.
    A4,
}

impl QuestionKind {
    /// The label a user whose intent equals the given query must assign.
    #[must_use]
    pub fn expected(self) -> Response {
        match self {
            QuestionKind::N1 | QuestionKind::N2 => Response::NonAnswer,
            _ => Response::Answer,
        }
    }
}

impl fmt::Display for QuestionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QuestionKind::A1 => "A1",
            QuestionKind::N1 => "N1",
            QuestionKind::A2 => "A2",
            QuestionKind::N2 => "N2",
            QuestionKind::A3 => "A3",
            QuestionKind::A4 => "A4",
        };
        f.write_str(s)
    }
}

/// One membership question of a verification set, with its expected label.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerificationQuestion {
    /// Fig. 6 family.
    pub kind: QuestionKind,
    /// The object to show the user.
    pub question: Obj,
    /// The label implied by the given query.
    pub expected: Response,
    /// Human-readable provenance (which expression the question probes).
    pub about: String,
}

/// The verification set of a role-preserving query (Fig. 6): O(k)
/// membership questions that surface any semantic difference from the
/// user's intent (Theorem 4.2).
#[derive(Clone, Debug)]
pub struct VerificationSet {
    n: u16,
    given: Query,
    items: Vec<VerificationQuestion>,
}

impl VerificationSet {
    /// Builds the verification set for `given`.
    ///
    /// # Errors
    /// [`ClassError`] if `given` is not role-preserving (qhorn-1 queries
    /// are, so both learnable classes are supported — footnote 2).
    pub fn build(given: &Query) -> Result<Self, ClassError> {
        validate_role_preserving(given)?;
        let n = given.arity();
        let nf = given.normal_form();
        let heads = nf.universal_heads();
        let top = BoolTuple::all_true(n);
        let universals: Vec<(VarSet, VarId)> = nf.universals().iter().cloned().collect();
        let mut items = Vec::new();

        // ---- A1: all dominant existential distinguishing tuples. -------
        let a1_tuples: Vec<BoolTuple> = nf
            .existentials()
            .iter()
            .map(|c| existential_tuple(n, c))
            .collect();
        if !a1_tuples.is_empty() {
            items.push(VerificationQuestion {
                kind: QuestionKind::A1,
                question: Obj::new(n, a1_tuples.iter().cloned()),
                expected: Response::Answer,
                about: "all dominant existential distinguishing tuples".to_string(),
            });
        }

        // ---- N1: drop one non-guarantee tuple to its children. ---------
        for conj in nf.existentials() {
            if nf.is_guarantee_conjunction(conj) {
                continue;
            }
            let dt = existential_tuple(n, conj);
            let children: Vec<BoolTuple> = dt
                .children()
                .into_iter()
                .filter(|c| !violates_any(c, universals.iter()))
                .collect();
            let tuples = a1_tuples
                .iter()
                .filter(|t| *t != &dt)
                .cloned()
                .chain(children);
            items.push(VerificationQuestion {
                kind: QuestionKind::N1,
                question: Obj::new(n, tuples),
                expected: Response::NonAnswer,
                about: format!("∃{} replaced by its children", fmt_vars(conj)),
            });
        }

        // ---- A2 / N2: per dominant universal Horn expression. -----------
        for (body, head) in &universals {
            let dt = universal_tuple(n, body, *head, &heads);
            if !body.is_empty() {
                // A2: children flip one body variable (other heads stay true).
                let children = body.iter().map(|b| dt.with(b, false));
                items.push(VerificationQuestion {
                    kind: QuestionKind::A2,
                    question: Obj::new(n, std::iter::once(top.clone()).chain(children)),
                    expected: Response::Answer,
                    about: format!(
                        "children of the distinguishing tuple of ∀{} → {head}",
                        fmt_vars(body)
                    ),
                });
            }
            items.push(VerificationQuestion {
                kind: QuestionKind::N2,
                question: Obj::new(n, [top.clone(), dt]),
                expected: Response::NonAnswer,
                about: format!("distinguishing tuple of ∀{} → {head}", fmt_vars(body)),
            });
        }

        // ---- A3: search roots for missing bodies inside conjunctions. --
        // One question per (dominant conjunction C, head h ∈ C) such that C
        // *strictly* dominates the guarantee clause of some body of h — the
        // "∃x2x3x4x5 dominates ∃x3x4x5" condition of §4.2. (The worked
        // example lists only its x5 question; Theorem 4.2's case 2(b)(ii)
        // needs the rule applied to every such pair, which we do.)
        for conj in nf.existentials() {
            for head in heads.iter().filter(|h| conj.contains(*h)) {
                let bodies_in: Vec<VarSet> = nf
                    .bodies_of(head)
                    .into_iter()
                    .filter(|b| b.is_subset(conj))
                    .collect();
                let strictly_dominates = bodies_in.iter().any(|b| &nf.close(&b.with(head)) != conj);
                if bodies_in.is_empty()
                    || bodies_in.iter().any(VarSet::is_empty)
                    || !strictly_dominates
                {
                    // No guarantee strictly dominated by this conjunction,
                    // or the head is bodyless (∅ dominates every body).
                    continue;
                }
                let outside: Vec<VarSet> = nf
                    .bodies_of(head)
                    .into_iter()
                    .filter(|b| !b.is_subset(conj))
                    .collect();
                let roots: Vec<BoolTuple> = choice_product(&bodies_in)
                    .map(|choice| {
                        let mut t = top.with(head, false).with_all(&choice, false);
                        // Break any remaining body of h that is still fully
                        // true by clearing its outside-C variables (keeps
                        // every C variable other than the choice true —
                        // e.g. 010101 vs 111001 in §4.2).
                        while let Some(b) = outside.iter().find(|b| t.satisfies_all(b)) {
                            t = t.with_all(&b.difference(conj), false);
                        }
                        t
                    })
                    .collect();
                items.push(VerificationQuestion {
                    kind: QuestionKind::A3,
                    question: Obj::new(n, std::iter::once(top.clone()).chain(roots)),
                    expected: Response::Answer,
                    about: format!(
                        "search roots for additional bodies of {head} within ∃{}",
                        fmt_vars(conj)
                    ),
                });
            }
        }

        // ---- A4: every non-head variable could secretly be a head. -----
        let non_heads = VarSet::full(n).difference(&heads);
        items.push(VerificationQuestion {
            kind: QuestionKind::A4,
            question: Obj::new(
                n,
                std::iter::once(top.clone()).chain(non_heads.iter().map(|x| top.with(x, false))),
            ),
            expected: Response::Answer,
            about: "one almost-true tuple per non-head variable".to_string(),
        });

        let set = VerificationSet {
            n,
            given: given.clone(),
            items,
        };
        debug_assert!(
            set.self_consistent(&nf),
            "expected labels must match the given query"
        );
        Ok(set)
    }

    /// Arity of the underlying query.
    #[must_use]
    pub fn arity(&self) -> u16 {
        self.n
    }

    /// The query being verified.
    #[must_use]
    pub fn given(&self) -> &Query {
        &self.given
    }

    /// The questions, grouped A1, N1*, (A2, N2)*, A3*, A4.
    #[must_use]
    pub fn questions(&self) -> &[VerificationQuestion] {
        &self.items
    }

    /// Number of membership questions (O(k), §4).
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the set is empty (only possible for the empty query).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Questions of one kind.
    pub fn of_kind(&self, kind: QuestionKind) -> impl Iterator<Item = &VerificationQuestion> {
        self.items.iter().filter(move |i| i.kind == kind)
    }

    /// Internal invariant: the given query itself labels every question as
    /// expected (a correct user whose intent equals `given` verifies).
    /// Evaluated through the kernel, compiled once from the normal form
    /// the builder already computed.
    fn self_consistent(&self, nf: &NormalForm) -> bool {
        let plan = CompiledQuery::from_normal_form(nf);
        self.items
            .iter()
            .all(|i| Response::from_bool(plan.matches(&i.question)) == i.expected)
    }
}

fn fmt_vars(vs: &VarSet) -> String {
    vs.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Expr;
    use crate::varset;
    use std::collections::BTreeSet;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    fn bits(o: &Obj) -> BTreeSet<String> {
        o.tuples().iter().map(BoolTuple::to_bits).collect()
    }

    fn set_for_paper_example() -> VerificationSet {
        VerificationSet::build(&crate::query::tests::paper_example()).unwrap()
    }

    #[test]
    fn a1_matches_section_4_2() {
        let set = set_for_paper_example();
        let a1: Vec<_> = set.of_kind(QuestionKind::A1).collect();
        assert_eq!(a1.len(), 1);
        let expected: BTreeSet<String> = ["111001", "011110", "110011", "011011", "100110"]
            .into_iter()
            .map(String::from)
            .collect();
        assert_eq!(bits(&a1[0].question), expected);
    }

    #[test]
    fn n1_matches_section_4_2() {
        // Four N1 questions (100110 is a guarantee clause and is skipped).
        let set = set_for_paper_example();
        let n1: Vec<_> = set.of_kind(QuestionKind::N1).collect();
        assert_eq!(n1.len(), 4);
        // The question for ∃x2x3x5x6 (tuple 011011) from §4.2 [N1].
        let expected: BTreeSet<String> = [
            "111001", "011110", "110011", // other A1 tuples
            "011010", "011001", "010011", "001011", // children of 011011
            "100110", // guarantee tuple from A1
        ]
        .into_iter()
        .map(String::from)
        .collect();
        let found = n1
            .iter()
            .find(|q| q.about.contains("x2x3x5x6"))
            .expect("question for ∃x2x3x5x6");
        assert_eq!(bits(&found.question), expected);
    }

    #[test]
    fn n1_respects_universal_violations() {
        // §4.2 [N1] for ∃x1x2x3(x6): children are 110001, 101001, 011001 —
        // flipping x6 would violate ∀x1x2→x6 and is excluded.
        let set = set_for_paper_example();
        let found = set
            .of_kind(QuestionKind::N1)
            .find(|q| q.about.contains("x1x2x3x6"))
            .unwrap();
        let b = bits(&found.question);
        assert!(b.contains("110001"));
        assert!(b.contains("101001"));
        assert!(b.contains("011001"));
        assert!(!b.contains("111000"), "child violating ∀x1x2→x6 excluded");
    }

    #[test]
    fn a2_matches_section_4_2() {
        let set = set_for_paper_example();
        let a2: Vec<_> = set.of_kind(QuestionKind::A2).collect();
        assert_eq!(a2.len(), 3);
        // ∀x1x4→x5: {111111, 100001? — children of 100101 flipping x1/x4:
        // 000101 and 100001}.
        let q = a2.iter().find(|q| q.about.contains("x1x4")).unwrap();
        let expected: BTreeSet<String> = ["111111", "000101", "100001"]
            .into_iter()
            .map(String::from)
            .collect();
        assert_eq!(bits(&q.question), expected);
    }

    #[test]
    fn n2_matches_section_4_2() {
        let set = set_for_paper_example();
        let n2: Vec<_> = set.of_kind(QuestionKind::N2).collect();
        assert_eq!(n2.len(), 3);
        let q = n2.iter().find(|q| q.about.contains("x1x2")).unwrap();
        let expected: BTreeSet<String> =
            ["111111", "110010"].into_iter().map(String::from).collect();
        assert_eq!(bits(&q.question), expected);
    }

    #[test]
    fn a3_matches_section_4_2() {
        // ∃x2x3x4x5 dominates the guarantee of ∀x3x4→x5; §4.2 shows the
        // question {111111, 010101, 111001}. (The worked example lists only
        // this question; the Fig. 6 rule applied to every (conjunction,
        // head) pair also yields two x6 questions, which completeness
        // requires — see DESIGN.md §3.)
        let set = set_for_paper_example();
        let a3: Vec<_> = set.of_kind(QuestionKind::A3).collect();
        let x5 = a3
            .iter()
            .find(|q| q.about.contains("x5 within ∃x2x3x4x5"))
            .expect("the paper's A3 question");
        let expected: BTreeSet<String> = ["111111", "010101", "111001"]
            .into_iter()
            .map(String::from)
            .collect();
        assert_eq!(bits(&x5.question), expected);
        // The two x6 questions (∃x1x2x3x6 and ∃x1x2x5x6 strictly dominate
        // the guarantee ∃x1x2x6 of ∀x1x2→x6).
        assert_eq!(a3.len(), 3);
        assert!(a3.iter().all(|q| q.expected == Response::Answer));
        // ∃x1x4x5 equals its own guarantee clause — no A3 question for it.
        assert!(!a3.iter().any(|q| q.about.contains("∃x1x4x5")));
    }

    #[test]
    fn a4_matches_section_4_2() {
        let set = set_for_paper_example();
        let a4: Vec<_> = set.of_kind(QuestionKind::A4).collect();
        assert_eq!(a4.len(), 1);
        let expected: BTreeSet<String> = ["111111", "011111", "101111", "110111", "111011"]
            .into_iter()
            .map(String::from)
            .collect();
        assert_eq!(bits(&a4[0].question), expected);
    }

    #[test]
    fn expected_labels_follow_kind() {
        let set = set_for_paper_example();
        for item in set.questions() {
            assert_eq!(item.expected, item.kind.expected());
        }
    }

    #[test]
    fn self_consistency_for_enumerated_queries() {
        // A user whose intent equals the given query confirms every
        // question — for every role-preserving query on 2 variables.
        for q in crate::query::generate::enumerate_role_preserving(2, true) {
            let set = VerificationSet::build(&q).unwrap();
            for item in set.questions() {
                assert_eq!(
                    q.eval(&item.question),
                    item.expected,
                    "query {q}, {} question {} about {}",
                    item.kind,
                    item.question,
                    item.about
                );
            }
        }
    }

    #[test]
    fn non_role_preserving_rejected() {
        let alias = Query::new(
            2,
            [
                Expr::universal(varset![1], v(2)),
                Expr::universal(varset![2], v(1)),
            ],
        )
        .unwrap();
        assert!(VerificationSet::build(&alias).is_err());
    }

    #[test]
    fn bodyless_heads_have_n2_but_no_a2() {
        // ∀x1 has no body variables to flip: A2 would be vacuous ({1^n}
        // alone) and is omitted; N2 carries the detection burden
        // (Lemma 4.5 never applies to ∅ ⊂ B since every body ⊃ ∅).
        let q = Query::new(2, [Expr::universal_bodyless(v(1)), Expr::conj(varset![2])]).unwrap();
        let set = VerificationSet::build(&q).unwrap();
        assert_eq!(set.of_kind(QuestionKind::A2).count(), 0);
        assert_eq!(set.of_kind(QuestionKind::N2).count(), 1);
    }

    #[test]
    fn n1_skips_guarantee_only_conjunctions_everywhere() {
        // For every enumerated 2-var query: N1 questions exist only for
        // dominant conjunctions that are not pure guarantee closures.
        for q in crate::query::generate::enumerate_role_preserving(2, true) {
            let nf = q.normal_form();
            let set = VerificationSet::build(&q).unwrap();
            let expected = nf
                .existentials()
                .iter()
                .filter(|c| !nf.is_guarantee_conjunction(c))
                .count();
            assert_eq!(set.of_kind(QuestionKind::N1).count(), expected, "{q}");
        }
    }

    #[test]
    fn question_tuple_counts_match_fig6_orders() {
        // Fig. 6's tuples-per-question column: A1 is one question with k_e
        // tuples; N2 questions have exactly 2 tuples; A2 ≤ |body| + 1;
        // A4 has #non-heads + 1.
        let q = crate::query::tests::paper_example();
        let nf = q.normal_form();
        let set = VerificationSet::build(&q).unwrap();
        for item in set.questions() {
            match item.kind {
                QuestionKind::A1 => assert_eq!(item.question.len(), nf.existentials().len()),
                QuestionKind::N2 => assert_eq!(item.question.len(), 2),
                QuestionKind::A2 => assert!(item.question.len() <= 3, "1^n + ≤2 children"),
                QuestionKind::A4 => {
                    let non_heads = 6 - nf.universal_heads().len();
                    assert_eq!(item.question.len(), non_heads + 1);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn empty_query_has_minimal_set() {
        let q = Query::empty(2);
        let set = VerificationSet::build(&q).unwrap();
        // No conjunctions → no A1/N1; no universals → no A2/N2/A3; A4
        // remains and detects any intent with a universal head.
        assert_eq!(set.len(), 1);
        assert_eq!(set.questions()[0].kind, QuestionKind::A4);
        let intent = Query::new(2, [Expr::universal_bodyless(v(1))]).unwrap();
        let mut user = crate::oracle::QueryOracle::new(intent);
        assert!(!set.verify(&mut user).is_verified());
    }

    #[test]
    fn size_is_linear_in_query_size() {
        // O(k) questions (§4): A1 + N1(≤k) + A2/N2 (≤2k) + A3(≤k·heads) + A4.
        let q = crate::query::tests::paper_example();
        let set = VerificationSet::build(&q).unwrap();
        let k = q.normal_form().existentials().len() + q.normal_form().universals().len();
        assert!(set.len() <= 4 * k + 2, "|set| = {} vs k = {k}", set.len());
        assert!(!set.is_empty());
    }
}
