//! Parser robustness: never panics, errors are positioned, and round-trips
//! hold on generated queries.

use proptest::prelude::*;
use qhorn_lang::{parse, parse_with_arity, printer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser returns Ok or Err but never panics, on fully arbitrary
    /// input.
    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,60}") {
        let _ = parse(&s);
    }

    /// …including inputs built from the language's own alphabet, which are
    /// far more likely to reach deep parser states.
    #[test]
    fn parser_never_panics_on_language_alphabet(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("all".to_string()),
                Just("some".to_string()),
                Just("∀".to_string()),
                Just("∃".to_string()),
                Just("->".to_string()),
                Just("→".to_string()),
                Just(";".to_string()),
                (1u16..9).prop_map(|i| format!("x{i}")),
            ],
            0..12,
        )
    ) {
        let src = tokens.join(" ");
        if let Ok(q) = parse(&src) {
            // Whatever parses must print and re-parse to itself.
            prop_assert_eq!(&parse(&printer::to_unicode(&q)).unwrap(), &q);
            prop_assert_eq!(&parse(&printer::to_ascii(&q)).unwrap(), &q);
        }
    }

    /// Structured round-trip: generated shorthand for random expressions.
    #[test]
    fn structured_round_trip(
        exprs in prop::collection::vec(
            (
                any::<bool>(),
                prop::collection::btree_set(1u16..7, 1..4),
                prop::option::of(1u16..7),
            ),
            1..5,
        )
    ) {
        let mut src = String::new();
        for (universal, body, head) in &exprs {
            let quant = if *universal { "all" } else { "some" };
            let vars: Vec<String> = body.iter().map(|i| format!("x{i}")).collect();
            match head {
                Some(h) if !body.contains(h) => {
                    src.push_str(&format!("{quant} {} -> x{h}; ", vars.join(" ")));
                }
                _ if !*universal || body.len() == 1 => {
                    src.push_str(&format!("{quant} {}; ", vars.join(" ")));
                }
                _ => continue, // multi-var universal without head: skipped
            }
        }
        if src.is_empty() {
            return Ok(());
        }
        if let Ok(q) = parse(&src) {
            prop_assert_eq!(&parse(&printer::to_ascii(&q)).unwrap(), &q);
        }
    }

    /// Error positions always lie within the source.
    #[test]
    fn error_offsets_in_bounds(s in "\\PC{0,40}") {
        if let Err(e) = parse(&s) {
            prop_assert!(e.offset <= s.len(), "offset {} beyond {}", e.offset, s.len());
        }
        if let Err(e) = parse_with_arity(&s, 3) {
            prop_assert!(e.offset <= s.len());
        }
    }
}
