//! Parser: token stream → [`qhorn_core::Query`].
//!
//! Grammar (expressions separated by whitespace or `;`/`,`):
//!
//! ```text
//! query := expr*
//! expr  := quant var+ (arrow var)?
//! ```
//!
//! Disambiguation rules, following the paper's conventions:
//!
//! * `∀x4` (single variable, no arrow) is the **bodyless** universal `∀x4`;
//! * `∀x1x2` without an arrow is rejected — the paper never writes a
//!   multi-variable universal without a head, and silently splitting it
//!   into bodyless expressions would be surprising;
//! * `∃x1x2` is a headless existential conjunction;
//! * `∃x1x2 → x3` is an existential Horn expression (≡ `∃x1x2x3` given its
//!   guarantee clause, but the role structure is preserved for qhorn-1).

use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::{lex, Token, TokenKind};
use qhorn_core::{Expr, Query, VarId, VarSet};

/// Parses a query, inferring the arity as the largest variable index
/// mentioned (`parse("∃x5")` yields arity 5).
///
/// # Errors
/// [`ParseError`] on lexical or structural problems.
pub fn parse(src: &str) -> Result<Query, ParseError> {
    let exprs = parse_exprs(src)?;
    let n = exprs
        .iter()
        .flat_map(|e| e.participating_vars().to_vec())
        .map(|v| v.one_based())
        .max()
        .unwrap_or(0);
    build(n, exprs, src)
}

/// Parses a query with an explicit arity; variables beyond `n` are
/// rejected.
///
/// # Errors
/// [`ParseError`] on lexical or structural problems, or variables `> n`.
pub fn parse_with_arity(src: &str, n: u16) -> Result<Query, ParseError> {
    let exprs = parse_exprs(src)?;
    for e in &exprs {
        if let Some(v) = e
            .participating_vars()
            .iter()
            .find(|v| v.index() >= n as usize)
        {
            return Err(ParseError::new(
                0,
                ParseErrorKind::VarBeyondArity {
                    var: v.one_based(),
                    arity: n,
                },
            ));
        }
    }
    build(n, exprs, src)
}

fn build(n: u16, exprs: Vec<Expr>, _src: &str) -> Result<Query, ParseError> {
    Query::new(n, exprs).map_err(|e| match e {
        qhorn_core::query::ExprError::HeadInBody { head } => {
            ParseError::new(0, ParseErrorKind::HeadInBody(head.to_string()))
        }
        other => unreachable!("parser emits structurally valid expressions: {other}"),
    })
}

fn parse_exprs(src: &str) -> Result<Vec<Expr>, ParseError> {
    let tokens = lex(src)?;
    let mut exprs = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        if matches!(tokens[pos].kind, TokenKind::Separator | TokenKind::Top) {
            // `⊤` contributes no expressions (the empty query's rendering).
            pos += 1;
            continue;
        }
        let (expr, next) = parse_expr(&tokens, pos)?;
        exprs.push(expr);
        pos = next;
    }
    Ok(exprs)
}

fn parse_expr(tokens: &[Token], start: usize) -> Result<(Expr, usize), ParseError> {
    let quant = &tokens[start];
    let universal = match quant.kind {
        TokenKind::Forall => true,
        TokenKind::Exists => false,
        ref other => {
            return Err(ParseError::new(
                quant.offset,
                ParseErrorKind::ExpectedQuantifier(format!("{other:?}")),
            ))
        }
    };
    let mut pos = start + 1;
    let mut vars: Vec<VarId> = Vec::new();
    while let Some(Token {
        kind: TokenKind::Var(i),
        ..
    }) = tokens.get(pos)
    {
        vars.push(VarId::from_one_based(*i));
        pos += 1;
    }
    if vars.is_empty() {
        return Err(ParseError::new(
            quant.offset,
            ParseErrorKind::EmptyExpression,
        ));
    }
    let head = if let Some(Token {
        kind: TokenKind::Arrow,
        offset,
    }) = tokens.get(pos)
    {
        pos += 1;
        match tokens.get(pos) {
            Some(Token {
                kind: TokenKind::Var(i),
                ..
            }) => {
                let h = VarId::from_one_based(*i);
                pos += 1;
                // Exactly one head: another variable right after is an error.
                if let Some(Token {
                    kind: TokenKind::Var(_),
                    offset,
                }) = tokens.get(pos)
                {
                    return Err(ParseError::new(*offset, ParseErrorKind::BadHead));
                }
                Some(h)
            }
            _ => return Err(ParseError::new(*offset, ParseErrorKind::BadHead)),
        }
    } else {
        None
    };

    let body: VarSet = vars.iter().copied().collect();
    let expr = match (universal, head) {
        (true, Some(h)) => Expr::universal(body, h),
        (false, Some(h)) => Expr::existential_horn(body, h),
        (true, None) => {
            if vars.len() > 1 {
                return Err(ParseError::new(
                    quant.offset,
                    ParseErrorKind::UniversalNeedsHead,
                ));
            }
            Expr::universal_bodyless(vars[0])
        }
        (false, None) => Expr::conj(body),
    };
    Ok((expr, pos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qhorn_core::varset;

    fn v(i: u16) -> VarId {
        VarId::from_one_based(i)
    }

    #[test]
    fn parses_the_paper_shorthand() {
        // §2.1: "∀x1x2 → x3 ∀x4 ∃x5".
        let q = parse("∀x1x2 → x3 ∀x4 ∃x5").unwrap();
        assert_eq!(q.arity(), 5);
        assert_eq!(
            q.exprs(),
            &[
                Expr::universal(varset![1, 2], v(3)),
                Expr::universal_bodyless(v(4)),
                Expr::conj(varset![5]),
            ]
        );
    }

    #[test]
    fn ascii_and_unicode_agree() {
        let a = parse("all x1 x2 -> x3; some x5").unwrap();
        let b = parse("∀x1x2 → x3 ∃x5").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn existential_horn_preserved() {
        let q = parse("some x1 x2 -> x5").unwrap();
        assert_eq!(q.exprs(), &[Expr::existential_horn(varset![1, 2], v(5))]);
    }

    #[test]
    fn paper_running_example_parses() {
        let q = parse("∀x1x4→x5 ∀x3x4→x5 ∀x1x2→x6 ∃x1x2x3 ∃x2x3x4 ∃x1x2x5 ∃x2x3x5x6").unwrap();
        assert_eq!(q.arity(), 6);
        assert_eq!(q.size(), 7);
        assert_eq!(q.universal_heads(), varset![5, 6]);
    }

    #[test]
    fn empty_source_is_the_empty_query() {
        let q = parse("").unwrap();
        assert_eq!(q, Query::empty(0));
        // The empty query's Display form round-trips too.
        assert_eq!(parse("⊤").unwrap(), Query::empty(0));
        assert_eq!(parse("top").unwrap(), Query::empty(0));
        assert_eq!(
            parse(&Query::empty(0).to_string()).unwrap(),
            Query::empty(0)
        );
    }

    #[test]
    fn multi_variable_universal_without_head_rejected() {
        let err = parse("all x1 x2").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UniversalNeedsHead));
    }

    #[test]
    fn two_heads_rejected() {
        let err = parse("all x1 -> x2 x3").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadHead));
        let err = parse("all x1 ->").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadHead));
    }

    #[test]
    fn quantifier_required() {
        assert!(parse("x1 x2").is_err());
        let err = parse("∃").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::EmptyExpression));
    }

    #[test]
    fn head_in_body_rejected() {
        let err = parse("all x1 x2 -> x1").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::HeadInBody(_)));
    }

    #[test]
    fn arity_inference_vs_explicit() {
        let q = parse("∃x3").unwrap();
        assert_eq!(q.arity(), 3);
        let q = parse_with_arity("∃x3", 6).unwrap();
        assert_eq!(q.arity(), 6);
        let err = parse_with_arity("∃x7", 6).unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::VarBeyondArity { var: 7, arity: 6 }
        ));
    }

    #[test]
    fn separators_are_optional_and_flexible() {
        let a = parse("∀x1 ∃x2").unwrap();
        let b = parse("∀x1; ∃x2").unwrap();
        let c = parse("∀x1,∃x2").unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn display_round_trip() {
        // core's Display output parses back to the same query.
        let q = parse("∀x1x2 → x3 ∀x4 ∃x5 ∃x1x2 → x6").unwrap();
        let printed = q.to_string();
        assert_eq!(parse(&printed).unwrap(), q);
    }
}
