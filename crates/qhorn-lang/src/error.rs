//! Parse errors with source positions.

use std::fmt;

/// A parse failure, with the byte offset of the offending token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Byte offset into the source string.
    pub offset: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The kinds of parse failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseErrorKind {
    /// A character that starts no token.
    UnexpectedChar(char),
    /// `x` not followed by digits, or an index of 0 (`x0`).
    BadVariable(String),
    /// An expression did not start with a quantifier.
    ExpectedQuantifier(String),
    /// A quantifier with no variables after it.
    EmptyExpression,
    /// `∀x1x2` without `-> head`: a multi-variable universal expression
    /// needs an explicit head.
    UniversalNeedsHead,
    /// `-> h` with more than one (or zero) head variables.
    BadHead,
    /// The head variable also appears in the body.
    HeadInBody(String),
    /// A variable index exceeds the declared arity.
    VarBeyondArity {
        /// Variable's 1-based index.
        var: u16,
        /// Declared arity.
        arity: u16,
    },
}

impl ParseError {
    pub(crate) fn new(offset: usize, kind: ParseErrorKind) -> Self {
        ParseError { offset, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: ", self.offset)?;
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseErrorKind::BadVariable(s) => {
                write!(f, "bad variable {s:?} (variables are x1, x2, …)")
            }
            ParseErrorKind::ExpectedQuantifier(s) => {
                write!(f, "expected a quantifier (∀/∃/all/some), found {s:?}")
            }
            ParseErrorKind::EmptyExpression => f.write_str("quantifier with no variables"),
            ParseErrorKind::UniversalNeedsHead => f.write_str(
                "a universal expression over several variables needs an explicit head: \
                 write `all x1 x2 -> x3` (or a single bodyless head, `all x3`)",
            ),
            ParseErrorKind::BadHead => f.write_str("expected exactly one head variable after ->"),
            ParseErrorKind::HeadInBody(v) => {
                write!(f, "head variable {v} also appears in the body")
            }
            ParseErrorKind::VarBeyondArity { var, arity } => {
                write!(f, "variable x{var} exceeds the declared arity {arity}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        let e = ParseError::new(3, ParseErrorKind::UniversalNeedsHead);
        assert!(e.to_string().contains("all x1 x2 -> x3"));
        let e = ParseError::new(0, ParseErrorKind::VarBeyondArity { var: 9, arity: 4 });
        assert!(e.to_string().contains("x9"));
        assert!(e.to_string().contains('4'));
    }
}
