//! # qhorn-lang
//!
//! A small front end for the paper's shorthand query notation (§2.1):
//!
//! ```text
//! ∀x1x2 → x3  ∀x4  ∃x5
//! ```
//!
//! with an ASCII-friendly spelling accepted interchangeably:
//!
//! ```text
//! all x1 x2 -> x3; all x4; some x5
//! ```
//!
//! The parser produces [`qhorn_core::Query`] values directly; printers
//! render queries back to shorthand (Unicode or ASCII) and to an annotated
//! SQL-style form for documentation.
//!
//! ```
//! use qhorn_lang::{parse, printer};
//!
//! let q = parse("all x1 x2 -> x3; some x5").unwrap();
//! assert_eq!(q.arity(), 5);
//! assert_eq!(printer::to_ascii(&q), "all x1 x2 -> x3  some x5");
//! assert_eq!(printer::to_unicode(&q), "∀x1x2 → x3  ∃x5");
//!
//! // Round trip.
//! assert_eq!(parse(&printer::to_unicode(&q)).unwrap(), q);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use error::ParseError;
pub use parser::{parse, parse_with_arity};
