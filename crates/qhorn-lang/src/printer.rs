//! Printers: shorthand (Unicode / ASCII) and an annotated SQL-style view.

use qhorn_core::{Expr, Query, VarSet};
use std::fmt::Write;

/// Renders the paper's Unicode shorthand (`∀x1x2 → x3  ∃x5`). Identical to
/// the query's `Display` output.
#[must_use]
pub fn to_unicode(q: &Query) -> String {
    q.to_string()
}

/// Renders ASCII shorthand (`all x1 x2 -> x3  some x5`), accepted back by
/// [`crate::parse`].
#[must_use]
pub fn to_ascii(q: &Query) -> String {
    if q.exprs().is_empty() {
        return String::new();
    }
    let mut out = String::new();
    for (i, e) in q.exprs().iter().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        match e {
            Expr::UniversalHorn { body, head } => {
                if body.is_empty() {
                    let _ = write!(out, "all {head}");
                } else {
                    let _ = write!(out, "all {} -> {head}", vars_spaced(body));
                }
            }
            Expr::ExistentialHorn { body, head } => {
                if body.is_empty() {
                    let _ = write!(out, "some {head}");
                } else {
                    let _ = write!(out, "some {} -> {head}", vars_spaced(body));
                }
            }
            Expr::ExistentialConj { vars } => {
                let _ = write!(out, "some {}", vars_spaced(vars));
            }
        }
    }
    out
}

fn vars_spaced(vs: &VarSet) -> String {
    vs.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders an annotated SQL-style view over a nested relation, with one
/// `EXISTS`/`NOT EXISTS` subquery per expression — the style of query the
/// paper's introduction shows users struggling to write by hand.
///
/// `props` supplies a human-readable name per variable (defaults to
/// `p1..pn` when `None`); `object` and `collection` name the outer relation
/// and the nested set attribute.
#[must_use]
pub fn to_sql_like(q: &Query, object: &str, collection: &str, props: Option<&[&str]>) -> String {
    let name = |i: usize| -> String {
        match props {
            Some(ps) if i < ps.len() => ps[i].to_string(),
            _ => format!("p{}", i + 1),
        }
    };
    let conj = |vs: &VarSet, neg: Option<qhorn_core::VarId>| -> String {
        let mut parts: Vec<String> = vs
            .iter()
            .map(|v| format!("{}(t)", name(v.index())))
            .collect();
        if let Some(h) = neg {
            parts.push(format!("NOT {}(t)", name(h.index())));
        }
        parts.join(" AND ")
    };
    let mut clauses: Vec<String> = Vec::new();
    for e in q.exprs() {
        match e {
            Expr::UniversalHorn { body, head } => {
                // ∀ body → head  ≡  no tuple has body true and head false;
                // plus the guarantee clause.
                clauses.push(format!(
                    "NOT EXISTS (SELECT 1 FROM {object}.{collection} t WHERE {})",
                    conj(body, Some(*head))
                ));
                clauses.push(format!(
                    "EXISTS (SELECT 1 FROM {object}.{collection} t WHERE {})",
                    conj(&body.with(*head), None)
                ));
            }
            Expr::ExistentialHorn { body, head } => {
                clauses.push(format!(
                    "EXISTS (SELECT 1 FROM {object}.{collection} t WHERE {})",
                    conj(&body.with(*head), None)
                ));
            }
            Expr::ExistentialConj { vars } => {
                clauses.push(format!(
                    "EXISTS (SELECT 1 FROM {object}.{collection} t WHERE {})",
                    conj(vars, None)
                ));
            }
        }
    }
    if clauses.is_empty() {
        return format!("SELECT * FROM {object}");
    }
    format!(
        "SELECT * FROM {object} WHERE\n      {}",
        clauses.join("\n  AND ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn ascii_round_trips_through_parse() {
        let q = parse("∀x1x2 → x3 ∀x4 ∃x5 ∃x1x2 → x6").unwrap();
        let ascii = to_ascii(&q);
        assert_eq!(ascii, "all x1 x2 -> x3  all x4  some x5  some x1 x2 -> x6");
        assert_eq!(parse(&ascii).unwrap(), q);
    }

    #[test]
    fn unicode_matches_display() {
        let q = parse("all x1 -> x2").unwrap();
        assert_eq!(to_unicode(&q), "∀x1 → x2");
    }

    #[test]
    fn empty_query_prints_empty_ascii() {
        assert_eq!(to_ascii(&Query::empty(3)), "");
    }

    #[test]
    fn sql_like_rendering_of_intro_query() {
        // Query (1): ∀c (isDark) ∧ ∃c (hasFilling ∧ origin=Madagascar).
        let q = parse("∀x1 ∃x2x3").unwrap();
        let sql = to_sql_like(
            &q,
            "box",
            "chocolates",
            Some(&["is_dark", "has_filling", "from_madagascar"]),
        );
        assert!(sql.contains("NOT EXISTS"), "{sql}");
        assert!(sql.contains("NOT is_dark(t)"), "{sql}");
        assert!(
            sql.contains("has_filling(t) AND from_madagascar(t)"),
            "{sql}"
        );
        // Guarantee clause of the bodyless universal.
        assert!(sql.contains("WHERE is_dark(t)"), "{sql}");
    }

    #[test]
    fn sql_like_default_names() {
        let q = parse("some x1 x2 -> x3").unwrap();
        let sql = to_sql_like(&q, "obj", "items", None);
        assert!(sql.contains("p1(t) AND p2(t) AND p3(t)"), "{sql}");
    }

    #[test]
    fn sql_like_empty_query() {
        assert_eq!(
            to_sql_like(&Query::empty(2), "obj", "items", None),
            "SELECT * FROM obj"
        );
    }

    #[test]
    fn round_trip_all_enumerated_small_queries() {
        // Both printers round-trip for every distinct role-preserving
        // query on two variables.
        for q in qhorn_core::query::generate::enumerate_role_preserving(2, true) {
            assert_eq!(parse(&to_unicode(&q)).unwrap(), q, "unicode: {q}");
            assert_eq!(parse(&to_ascii(&q)).unwrap(), q, "ascii: {}", to_ascii(&q));
        }
    }
}
