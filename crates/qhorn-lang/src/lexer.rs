//! Tokenizer for the shorthand notation.
//!
//! Tokens: quantifiers (`∀`, `∃`, `all`, `some`, `forall`, `exists`),
//! variables (`x` followed by a 1-based index; juxtaposed variables like
//! `x1x2` lex as two tokens), arrows (`->`, `→`, `⇒`, `implies`), and
//! expression separators (`;`, `,` — optional, whitespace suffices).

use crate::error::{ParseError, ParseErrorKind};

/// One lexical token with its byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// Byte offset in the source.
    pub offset: usize,
    /// Token kind.
    pub kind: TokenKind,
}

/// The token kinds of the shorthand language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// `∀` / `all` / `forall` / `every`.
    Forall,
    /// `∃` / `some` / `exists`.
    Exists,
    /// `->` / `→` / `⇒` / `implies`.
    Arrow,
    /// A variable with its 1-based index (`x4` → `Var(4)`).
    Var(u16),
    /// `;` or `,` — an explicit expression separator.
    Separator,
    /// `⊤` / `top` — the empty query (everything is an answer).
    Top,
}

/// Tokenizes a source string.
///
/// # Errors
/// [`ParseError`] on unknown characters or malformed variables.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.char_indices().collect::<Vec<_>>();
    let mut i = 0usize;
    while i < bytes.len() {
        let (off, c) = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ';' | ',' => {
                out.push(Token {
                    offset: off,
                    kind: TokenKind::Separator,
                });
                i += 1;
            }
            '∀' => {
                out.push(Token {
                    offset: off,
                    kind: TokenKind::Forall,
                });
                i += 1;
            }
            '⊤' => {
                out.push(Token {
                    offset: off,
                    kind: TokenKind::Top,
                });
                i += 1;
            }
            '∃' => {
                out.push(Token {
                    offset: off,
                    kind: TokenKind::Exists,
                });
                i += 1;
            }
            '→' | '⇒' => {
                out.push(Token {
                    offset: off,
                    kind: TokenKind::Arrow,
                });
                i += 1;
            }
            '-' => {
                if matches!(bytes.get(i + 1), Some((_, '>'))) {
                    out.push(Token {
                        offset: off,
                        kind: TokenKind::Arrow,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(off, ParseErrorKind::UnexpectedChar('-')));
                }
            }
            'x' | 'X' => {
                let mut j = i + 1;
                let mut digits = String::new();
                while j < bytes.len() && bytes[j].1.is_ascii_digit() {
                    digits.push(bytes[j].1);
                    j += 1;
                }
                if digits.is_empty() {
                    let (word, _) = read_word(&bytes, i);
                    return Err(ParseError::new(off, ParseErrorKind::BadVariable(word)));
                }
                let idx: u32 = digits.parse().map_err(|_| {
                    ParseError::new(off, ParseErrorKind::BadVariable(format!("x{digits}")))
                })?;
                if idx == 0 || idx > u32::from(u16::MAX) {
                    return Err(ParseError::new(
                        off,
                        ParseErrorKind::BadVariable(format!("x{digits}")),
                    ));
                }
                out.push(Token {
                    offset: off,
                    kind: TokenKind::Var(idx as u16),
                });
                i = j;
            }
            c if c.is_alphabetic() => {
                let (word, j) = read_word(&bytes, i);
                let kind = match word.to_ascii_lowercase().as_str() {
                    "all" | "forall" | "every" => TokenKind::Forall,
                    "some" | "exists" => TokenKind::Exists,
                    "implies" => TokenKind::Arrow,
                    "top" => TokenKind::Top,
                    _ => {
                        return Err(ParseError::new(
                            off,
                            ParseErrorKind::ExpectedQuantifier(word),
                        ))
                    }
                };
                out.push(Token { offset: off, kind });
                i = j;
            }
            other => return Err(ParseError::new(off, ParseErrorKind::UnexpectedChar(other))),
        }
    }
    Ok(out)
}

fn read_word(bytes: &[(usize, char)], start: usize) -> (String, usize) {
    let mut j = start;
    let mut word = String::new();
    while j < bytes.len() && bytes[j].1.is_alphanumeric() {
        word.push(bytes[j].1);
        j += 1;
    }
    (word, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_unicode_shorthand() {
        assert_eq!(
            kinds("∀x1x2 → x3"),
            vec![
                TokenKind::Forall,
                TokenKind::Var(1),
                TokenKind::Var(2),
                TokenKind::Arrow,
                TokenKind::Var(3)
            ]
        );
    }

    #[test]
    fn lexes_ascii_keywords() {
        assert_eq!(
            kinds("all x1 x2 -> x3; some x5"),
            vec![
                TokenKind::Forall,
                TokenKind::Var(1),
                TokenKind::Var(2),
                TokenKind::Arrow,
                TokenKind::Var(3),
                TokenKind::Separator,
                TokenKind::Exists,
                TokenKind::Var(5)
            ]
        );
    }

    #[test]
    fn juxtaposed_variables_split() {
        assert_eq!(kinds("x12x3"), vec![TokenKind::Var(12), TokenKind::Var(3)]);
    }

    #[test]
    fn alternative_spellings() {
        assert_eq!(kinds("forall x1 implies x2")[0], TokenKind::Forall);
        assert_eq!(kinds("exists x1")[0], TokenKind::Exists);
        assert_eq!(kinds("every x1")[0], TokenKind::Forall);
        assert_eq!(kinds("∃x1 ⇒ x2")[2], TokenKind::Arrow);
    }

    #[test]
    fn rejects_x0_and_bare_x() {
        assert!(lex("x0").is_err());
        assert!(lex("∃ x y").is_err());
    }

    #[test]
    fn rejects_unknown_words_and_chars() {
        let err = lex("grab x1").unwrap_err();
        assert!(err.to_string().contains("grab"));
        assert!(lex("x1 & x2").is_err());
        assert!(lex("x1 - x2").is_err());
    }

    #[test]
    fn offsets_point_into_source() {
        let toks = lex("  ∀x1").unwrap();
        assert_eq!(toks[0].offset, 2);
    }

    #[test]
    fn top_token() {
        assert_eq!(kinds("⊤"), vec![TokenKind::Top]);
        assert_eq!(kinds("top"), vec![TokenKind::Top]);
    }

    #[test]
    fn empty_source_lexes_to_nothing() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("  \n\t ").unwrap().is_empty());
    }
}
