//! Filesystem-level store tests: append/recover round trips, rotation,
//! compaction, fsync policies, and on-demand single-session loads.

use qhorn_core::{Obj, Response};
use qhorn_engine::session::{Exchange, LearnerKind};
use qhorn_lang::parse_with_arity;
use qhorn_store::{FsyncPolicy, LogRecord, SessionMeta, SessionStore, SnapshotEntry, StoreConfig};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &std::path::Path) -> StoreConfig {
    StoreConfig {
        fsync: FsyncPolicy::Always,
        ..StoreConfig::new(dir.to_path_buf())
    }
}

fn meta(dataset: &str) -> SessionMeta {
    SessionMeta {
        dataset: dataset.into(),
        size: 30,
        learner: LearnerKind::Qhorn1,
        max_questions: Some(500),
    }
}

fn exchange(bits: &str, response: Response) -> Exchange {
    Exchange {
        question: Obj::from_bits(bits),
        from_store: false,
        response,
    }
}

/// A small session history: created, two exchanges, learned.
fn drive_session(store: &mut SessionStore, id: u64) {
    store
        .append(&LogRecord::SessionCreated {
            id,
            meta: meta("chocolates"),
        })
        .unwrap();
    store
        .append(&LogRecord::ExchangeAppended {
            id,
            exchange: exchange("110 011", Response::Answer),
        })
        .unwrap();
    store
        .append(&LogRecord::ExchangeAppended {
            id,
            exchange: exchange("000", Response::NonAnswer),
        })
        .unwrap();
    store
        .append(&LogRecord::QueryLearned {
            id,
            query: parse_with_arity("all x1; some x2 x3", 3).unwrap(),
        })
        .unwrap();
}

#[test]
fn append_then_reopen_recovers_everything() {
    let dir = temp_dir("roundtrip");
    for policy in [
        FsyncPolicy::Always,
        FsyncPolicy::EveryN(3),
        FsyncPolicy::Never,
    ] {
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = StoreConfig {
            fsync: policy,
            ..StoreConfig::new(dir.to_path_buf())
        };
        {
            let (mut store, recovered) = SessionStore::open(&cfg).unwrap();
            assert!(recovered.sessions.is_empty());
            drive_session(&mut store, 1);
            drive_session(&mut store, 2);
            assert_eq!(store.stats().records_appended, 8);
        }
        // Process "crash": the store was dropped without ceremony.
        let (store, recovered) = SessionStore::open(&cfg).unwrap();
        assert_eq!(recovered.sessions.len(), 2, "policy {policy:?}");
        assert_eq!(recovered.max_session_id, 2);
        for s in &recovered.sessions {
            assert_eq!(s.answered, 2);
            assert_eq!(s.transcript.len(), 2);
            assert!(s.learned.is_some());
            assert_eq!(s.asked.len(), 2);
        }
        assert_eq!(store.stats().recovered_sessions, 2);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn closed_sessions_are_not_recovered_but_their_ids_stay_reserved() {
    let dir = temp_dir("closed");
    let cfg = config(&dir);
    {
        let (mut store, _) = SessionStore::open(&cfg).unwrap();
        drive_session(&mut store, 1);
        drive_session(&mut store, 2);
        store.append(&LogRecord::SessionClosed { id: 2 }).unwrap();
    }
    let (_, recovered) = SessionStore::open(&cfg).unwrap();
    assert_eq!(recovered.sessions.len(), 1);
    assert_eq!(recovered.sessions[0].id, 1);
    // Id 2 must not be handed out again: old records still mention it.
    assert_eq!(recovered.max_session_id, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiny_segments_rotate_and_still_recover() {
    let dir = temp_dir("rotate");
    let cfg = StoreConfig {
        segment_max_bytes: 256, // a few records per segment
        ..config(&dir)
    };
    {
        let (mut store, _) = SessionStore::open(&cfg).unwrap();
        for id in 1..=5 {
            drive_session(&mut store, id);
        }
        assert!(store.stats().segments > 1, "{:?}", store.stats());
    }
    let (_, recovered) = SessionStore::open(&cfg).unwrap();
    assert_eq!(recovered.sessions.len(), 5);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_truncates_the_log_and_preserves_state() {
    let dir = temp_dir("compact");
    let cfg = StoreConfig {
        segment_max_bytes: 256,
        ..config(&dir)
    };
    {
        let (mut store, _) = SessionStore::open(&cfg).unwrap();
        for id in 1..=4 {
            drive_session(&mut store, id);
        }
        let before = store.live_log_bytes();
        let boundary = store.rotate().unwrap();
        // No states re-captured by the caller: every session is carried
        // forward from disk.
        store.write_snapshot(&[], boundary).unwrap();
        assert!(store.live_log_bytes() < before);
        assert_eq!(store.stats().compactions, 1);
    }
    let (store, recovered) = SessionStore::open(&cfg).unwrap();
    assert_eq!(recovered.sessions.len(), 4);
    for s in &recovered.sessions {
        assert_eq!(s.transcript.len(), 2);
        assert!(s.learned.is_some());
    }
    // Records appended after the snapshot still apply on top of it.
    drop(store);
    {
        let (mut store, _) = SessionStore::open(&cfg).unwrap();
        store
            .append(&LogRecord::ExchangeAppended {
                id: 1,
                exchange: exchange("111", Response::Answer),
            })
            .unwrap();
    }
    let (_, recovered) = SessionStore::open(&cfg).unwrap();
    let s1 = recovered.sessions.iter().find(|s| s.id == 1).unwrap();
    assert_eq!(s1.transcript.len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn caller_captured_states_override_disk_state() {
    let dir = temp_dir("captured");
    let cfg = config(&dir);
    let (mut store, _) = SessionStore::open(&cfg).unwrap();
    drive_session(&mut store, 1);
    let boundary = store.rotate().unwrap();
    // Capture a richer state than the log shows (as the registry does for
    // live sessions whose transcripts contain auto-answered entries).
    let mut session = store.load_session(1).unwrap().unwrap();
    session.verified = Some(true);
    let through = store.last_seq();
    store
        .write_snapshot(
            &[SnapshotEntry {
                through_seq: through,
                session,
            }],
            boundary,
        )
        .unwrap();
    drop(store);
    let (_, recovered) = SessionStore::open(&cfg).unwrap();
    assert_eq!(recovered.sessions[0].verified, Some(true));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn records_racing_past_the_compaction_boundary_survive() {
    // The compaction window: rotate → capture states → write snapshot.
    // An append landing between capture and write can itself auto-rotate
    // (tiny segments force it here); the segment it seals postdates the
    // boundary, so the snapshot must NOT delete it — otherwise an
    // acknowledged record vanishes.
    let dir = temp_dir("race");
    let cfg = StoreConfig {
        segment_max_bytes: 128, // every exchange record forces a rotation
        ..config(&dir)
    };
    let (mut store, _) = SessionStore::open(&cfg).unwrap();
    drive_session(&mut store, 1);
    let boundary = store.rotate().unwrap();
    // "Capture" session 1 now…
    let stale = SnapshotEntry {
        through_seq: store.last_seq(),
        session: store.load_session(1).unwrap().unwrap(),
    };
    // …then three more answers race in, auto-rotating past the boundary.
    for _ in 0..3 {
        store
            .append(&LogRecord::ExchangeAppended {
                id: 1,
                exchange: exchange("111", Response::Answer),
            })
            .unwrap();
    }
    store.write_snapshot(&[stale], boundary).unwrap();
    drop(store);
    let (_, recovered) = SessionStore::open(&cfg).unwrap();
    let s1 = recovered.sessions.iter().find(|s| s.id == 1).unwrap();
    assert_eq!(
        s1.transcript.len(),
        5,
        "the 2 captured + 3 racing exchanges must all survive compaction"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dataset_registrations_survive_restart_and_compaction() {
    let def = qhorn_relation::datasets::chocolates::dataset_def;
    let dir = temp_dir("datasets");
    let cfg = StoreConfig {
        segment_max_bytes: 256,
        ..config(&dir)
    };
    {
        let (mut store, _) = SessionStore::open(&cfg).unwrap();
        store
            .append(&LogRecord::DatasetRegistered { def: def("shop-a") })
            .unwrap();
        store
            .append(&LogRecord::DatasetRegistered { def: def("shop-b") })
            .unwrap();
        drive_session(&mut store, 1);
        store
            .append(&LogRecord::DatasetDropped {
                name: "shop-b".into(),
            })
            .unwrap();
    }
    // Restart: registrations replay (minus the drop).
    {
        let (mut store, recovered) = SessionStore::open(&cfg).unwrap();
        let names: Vec<&str> = recovered.datasets.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["shop-a"]);
        assert_eq!(recovered.datasets[0].relation.len(), 2);
        // Compaction deletes the segments holding the original
        // registration records; the definitions must be re-appended into
        // the fresh log, not lost with them.
        let boundary = store.rotate().unwrap();
        store.write_snapshot(&[], boundary).unwrap();
        assert_eq!(store.stats().compactions, 1);
    }
    let (_, recovered) = SessionStore::open(&cfg).unwrap();
    let names: Vec<&str> = recovered.datasets.iter().map(|d| d.name.as_str()).collect();
    assert_eq!(names, ["shop-a"], "registration survived compaction");
    recovered.datasets[0].validate().unwrap();
    assert_eq!(recovered.sessions.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn load_session_replays_one_id_on_demand() {
    let dir = temp_dir("load");
    let cfg = config(&dir);
    let (mut store, _) = SessionStore::open(&cfg).unwrap();
    drive_session(&mut store, 1);
    drive_session(&mut store, 2);
    let s = store.load_session(2).unwrap().unwrap();
    assert_eq!(s.id, 2);
    assert_eq!(s.transcript.len(), 2);
    assert!(store.load_session(99).unwrap().is_none());
    store.append(&LogRecord::SessionClosed { id: 2 }).unwrap();
    assert!(store.load_session(2).unwrap().is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_written_marker_lands_in_the_log() {
    let dir = temp_dir("marker");
    let cfg = config(&dir);
    let (mut store, _) = SessionStore::open(&cfg).unwrap();
    drive_session(&mut store, 1);
    let boundary = store.rotate().unwrap();
    store.write_snapshot(&[], boundary).unwrap();
    assert_eq!(store.stats().last_compaction_seq, 4);
    // The marker is informational; recovery ignores it.
    drop(store);
    let (_, recovered) = SessionStore::open(&cfg).unwrap();
    assert_eq!(recovered.sessions.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
