//! Torn-write recovery: truncating the log at **every byte offset** must
//! never panic recovery and never resurrect a half-written record — the
//! recovered state is exactly the replay of the fully-durable record
//! prefix, and the store stays appendable afterwards.

use proptest::prelude::*;
use qhorn_core::{Obj, Query, Response};
use qhorn_engine::session::{Exchange, LearnerKind};
use qhorn_lang::parse_with_arity;
use qhorn_relation::datasets::chocolates;
use qhorn_relation::DatasetDef;
use qhorn_store::{FsyncPolicy, LogRecord, SessionMeta, SessionStore, StoreConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("torn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &std::path::Path) -> StoreConfig {
    StoreConfig {
        // Durability is irrelevant here: we simulate the crash by byte
        // truncation, not by losing OS buffers.
        fsync: FsyncPolicy::Never,
        ..StoreConfig::new(dir.to_path_buf())
    }
}

fn meta(learner: LearnerKind) -> SessionMeta {
    SessionMeta {
        dataset: "chocolates".into(),
        size: 30,
        learner,
        max_questions: None,
    }
}

fn exchange(bits: &str, response: Response) -> Exchange {
    Exchange {
        question: Obj::from_bits(bits),
        from_store: false,
        response,
    }
}

fn dataset(name: &str) -> DatasetDef {
    chocolates::dataset_def(name)
}

/// What the test expects recovery to rebuild — an independent, minimal
/// re-implementation of replay, used as the oracle.
#[derive(Default, Clone, PartialEq, Debug)]
struct Expected {
    answered: usize,
    responses: Vec<Response>,
    learned: Option<Query>,
    verified: Option<bool>,
}

/// `(sessions, registered dataset names)` the durable prefix implies.
fn replay_expected(records: &[LogRecord]) -> (BTreeMap<u64, Expected>, BTreeSet<String>) {
    let mut sessions: BTreeMap<u64, Expected> = BTreeMap::new();
    let mut datasets: BTreeSet<String> = BTreeSet::new();
    for rec in records {
        match rec {
            LogRecord::SessionCreated { id, .. } => {
                sessions.entry(*id).or_default();
            }
            LogRecord::ExchangeAppended { id, exchange } => {
                if let Some(s) = sessions.get_mut(id) {
                    s.answered += 1;
                    s.responses.push(exchange.response);
                }
            }
            LogRecord::Corrected { id, corrections } => {
                if let Some(s) = sessions.get_mut(id) {
                    for &(idx, r) in corrections {
                        if let Some(slot) = s.responses.get_mut(idx) {
                            *slot = r;
                        }
                    }
                    s.learned = None;
                    s.verified = None;
                }
            }
            LogRecord::QueryLearned { id, query } => {
                if let Some(s) = sessions.get_mut(id) {
                    s.learned = Some(query.clone());
                }
            }
            LogRecord::Verified { id, verified } => {
                if let Some(s) = sessions.get_mut(id) {
                    s.verified = Some(*verified);
                }
            }
            LogRecord::SessionClosed { id } => {
                sessions.remove(id);
            }
            LogRecord::DatasetRegistered { def } => {
                datasets.insert(def.name.clone());
            }
            LogRecord::DatasetDropped { name } => {
                datasets.remove(name);
            }
            LogRecord::SnapshotWritten { .. } => {}
        }
    }
    (sessions, datasets)
}

/// Builds a record history for `n_sessions` sessions; shapes vary with
/// `style` so different record kinds interleave.
fn build_records(n_sessions: u64, style: u64) -> Vec<LogRecord> {
    let q3 = parse_with_arity("all x1; some x2 x3", 3).unwrap();
    let q1 = parse_with_arity("some x1", 3).unwrap();
    let mut records = Vec::new();
    // Dataset registrations interleave with session records; one of the
    // two is dropped again so both directions cross truncation points.
    records.push(LogRecord::DatasetRegistered {
        def: dataset("alpha"),
    });
    for id in 1..=n_sessions {
        let learner = if (id + style).is_multiple_of(2) {
            LearnerKind::Qhorn1
        } else {
            LearnerKind::RolePreserving
        };
        records.push(LogRecord::SessionCreated {
            id,
            meta: meta(learner),
        });
        let n_exchanges = 1 + ((id + style) % 3) as usize;
        for i in 0..n_exchanges {
            let response = if (i as u64 + style).is_multiple_of(2) {
                Response::Answer
            } else {
                Response::NonAnswer
            };
            let bits = ["111", "110 011", "001"][i % 3];
            records.push(LogRecord::ExchangeAppended {
                id,
                exchange: exchange(bits, response),
            });
        }
        match (id + style) % 4 {
            0 => {
                records.push(LogRecord::QueryLearned {
                    id,
                    query: q3.clone(),
                });
                records.push(LogRecord::Verified {
                    id,
                    verified: style.is_multiple_of(2),
                });
            }
            1 => {
                records.push(LogRecord::QueryLearned {
                    id,
                    query: q1.clone(),
                });
                records.push(LogRecord::Corrected {
                    id,
                    corrections: vec![(0, Response::NonAnswer)],
                });
                records.push(LogRecord::QueryLearned {
                    id,
                    query: q3.clone(),
                });
            }
            2 => records.push(LogRecord::SessionClosed { id }),
            _ => {} // left mid-learning
        }
    }
    records.push(LogRecord::DatasetRegistered {
        def: dataset("beta"),
    });
    records.push(LogRecord::DatasetDropped {
        name: "alpha".into(),
    });
    records
}

/// The core property: for a log of `records`, truncation at every byte
/// offset recovers exactly the durable record prefix.
fn check_every_truncation(records: &[LogRecord], tag: &str) {
    // Write the full log once, tracking each record's frame end offset.
    let full_dir = temp_dir(&format!("{tag}-full"));
    let seg = full_dir.join("seg-000001.qlog");
    let mut ends = Vec::with_capacity(records.len());
    {
        let (mut store, _) = SessionStore::open(&config(&full_dir)).unwrap();
        for rec in records {
            store.append(rec).unwrap();
            ends.push(std::fs::metadata(&seg).unwrap().len());
        }
    }
    let bytes = std::fs::read(&seg).unwrap();
    assert_eq!(*ends.last().unwrap(), bytes.len() as u64);

    let cut_dir = temp_dir(&format!("{tag}-cut"));
    for cut in 0..=bytes.len() {
        let _ = std::fs::remove_dir_all(&cut_dir);
        std::fs::create_dir_all(&cut_dir).unwrap();
        std::fs::write(cut_dir.join("seg-000001.qlog"), &bytes[..cut]).unwrap();

        let durable = ends.iter().filter(|&&end| end <= cut as u64).count();
        let (expected, expected_datasets) = replay_expected(&records[..durable]);

        let (mut store, recovered) = SessionStore::open(&config(&cut_dir)).unwrap();
        let got_datasets: BTreeSet<String> =
            recovered.datasets.iter().map(|d| d.name.clone()).collect();
        assert_eq!(
            got_datasets,
            expected_datasets,
            "datasets at cut {cut}/{}",
            bytes.len()
        );
        let got: BTreeMap<u64, Expected> = recovered
            .sessions
            .iter()
            .map(|s| {
                (
                    s.id,
                    Expected {
                        answered: s.answered,
                        responses: s.transcript.iter().map(|e| e.response).collect(),
                        learned: s.learned.clone(),
                        verified: s.verified,
                    },
                )
            })
            .collect();
        assert_eq!(got, expected, "cut at byte {cut}/{}", bytes.len());
        // A torn tail was truncated mid-frame; the store must accept new
        // appends cleanly.
        store.append(&LogRecord::SessionClosed { id: 999 }).unwrap();
        if cut.is_multiple_of(16) {
            drop(store);
            let (_, again) = SessionStore::open(&config(&cut_dir)).unwrap();
            let live: Vec<u64> = again.sessions.iter().map(|s| s.id).collect();
            let want: Vec<u64> = expected.keys().copied().collect();
            assert_eq!(live, want, "reopen after post-cut append, cut {cut}");
        }
    }
    let _ = std::fs::remove_dir_all(&full_dir);
    let _ = std::fs::remove_dir_all(&cut_dir);
}

/// Exhaustive every-byte-offset sweep over a fixed, representative log
/// (all seven record kinds present).
#[test]
fn recovery_survives_truncation_at_every_byte_offset() {
    let mut records = build_records(4, 1);
    records.push(LogRecord::SnapshotWritten {
        through_seq: 3,
        sessions: 1,
    });
    check_every_truncation(&records, "exhaustive");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized record mixes, still exhaustive over byte offsets.
    #[test]
    fn recovery_survives_truncation_for_random_histories(
        n_sessions in 1u64..5,
        style in any::<u64>(),
    ) {
        check_every_truncation(
            &build_records(n_sessions, style % 1024),
            &format!("prop-{n_sessions}-{}", style % 1024),
        );
    }
}
