//! Regression: a CRC-valid but undecodable frame **mid-segment** must
//! surface as [`StoreError::Corrupt`] from the replay paths
//! (`load_session` when the session's own frames are affected,
//! `load_session_unindexed` and `write_snapshot` always), not silently
//! discard every record behind it. Since the per-session index, a
//! session whose own frames are intact restores completely even when an
//! unrelated frame is corrupt — isolation, not silence. (A torn physical
//! tail — incomplete or checksum-failing trailing bytes — is different:
//! crashes produce those legitimately, and recovery truncates them.)
//!
//! The bug this pins: `replay_disk` used to `break` out of a segment on
//! the first undecodable frame, so `load_session` reported sessions whose
//! later exchanges existed on disk as missing or stale.

use qhorn_engine::session::LearnerKind;
use qhorn_store::crc::crc32;
use qhorn_store::{FsyncPolicy, LogRecord, SessionMeta, SessionStore, StoreConfig, StoreError};
use std::io::Write;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("corrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &std::path::Path) -> StoreConfig {
    StoreConfig {
        fsync: FsyncPolicy::Never,
        ..StoreConfig::new(dir.to_path_buf())
    }
}

fn meta() -> SessionMeta {
    SessionMeta {
        dataset: "chocolates".into(),
        size: 30,
        learner: LearnerKind::Qhorn1,
        max_questions: None,
    }
}

/// A complete, checksum-correct frame whose payload is not a decodable
/// log record — the shape in-place corruption (or a buggy writer) leaves,
/// which a crash cannot.
fn garbage_frame() -> Vec<u8> {
    let payload = b"{\"seq\":999,\"kind\":\"no_such_kind\"}";
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

#[test]
fn valid_crc_garbage_mid_segment_is_corrupt_not_silent_truncation() {
    let dir = temp_dir("mid-segment");
    let (mut store, _) = SessionStore::open(&config(&dir)).unwrap();
    store
        .append(&LogRecord::SessionCreated {
            id: 1,
            meta: meta(),
        })
        .unwrap();

    // Plant the garbage frame in the middle of the active segment by
    // appending through a second file handle, then append a real record
    // behind it through the store (its O_APPEND handle lands after the
    // garbage).
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("seg-000001.qlog"))
            .unwrap();
        f.write_all(&garbage_frame()).unwrap();
    }
    store
        .append(&LogRecord::SessionCreated {
            id: 2,
            meta: meta(),
        })
        .unwrap();

    // Before the fix both replay paths returned Ok with session 2's
    // record silently dropped (`load_session(2)` came back `None`).
    // Session 2's post-garbage frame is desynchronized from the store's
    // offset accounting, so the indexed read lands on the garbage and
    // reports it loudly.
    match store.load_session(2) {
        Err(StoreError::Corrupt(msg)) => {
            assert!(msg.contains("seg-000001"), "{msg}");
        }
        other => panic!("expected StoreError::Corrupt, got {other:?}"),
    }
    // Session 1's own frames are intact, and the per-session index lets
    // its restore avoid other sessions' frames entirely — so it is served
    // complete rather than refused (corruption isolation, not silence:
    // nothing of session 1's history is missing). The full-scan
    // reference path still refuses, as before the index existed.
    assert_eq!(store.load_session(1).unwrap().map(|s| s.id), Some(1));
    assert!(matches!(
        store.load_session_unindexed(1),
        Err(StoreError::Corrupt(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_at_open_still_truncates_at_the_garbage() {
    // `SessionStore::open` keeps its recover-don't-refuse contract: the
    // garbage frame marks a torn tail, later records are cut, and the
    // truncation is counted.
    let dir = temp_dir("reopen");
    {
        let (mut store, _) = SessionStore::open(&config(&dir)).unwrap();
        store
            .append(&LogRecord::SessionCreated {
                id: 1,
                meta: meta(),
            })
            .unwrap();
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join("seg-000001.qlog"))
                .unwrap();
            f.write_all(&garbage_frame()).unwrap();
        }
        store
            .append(&LogRecord::SessionCreated {
                id: 2,
                meta: meta(),
            })
            .unwrap();
    }
    let (store, recovered) = SessionStore::open(&config(&dir)).unwrap();
    let ids: Vec<u64> = recovered.sessions.iter().map(|s| s.id).collect();
    assert_eq!(ids, vec![1], "records behind the garbage are cut at open");
    assert_eq!(store.stats().torn_truncations, 1);
    // And the replay paths are clean again after the truncation.
    assert!(store.load_session(1).unwrap().is_some());
    assert!(store.load_session(2).unwrap().is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_physical_tail_stays_recoverable_in_replay_paths() {
    // An incomplete trailing frame (what a crash actually leaves) must
    // NOT trip the corruption error: replay skips it exactly as before.
    let dir = temp_dir("tail");
    let (mut store, _) = SessionStore::open(&config(&dir)).unwrap();
    store
        .append(&LogRecord::SessionCreated {
            id: 1,
            meta: meta(),
        })
        .unwrap();
    store.sync().unwrap();
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("seg-000001.qlog"))
            .unwrap();
        // Half a frame: a length prefix promising more bytes than exist.
        f.write_all(&[0x40, 0, 0, 0, 0xde, 0xad]).unwrap();
    }
    let loaded = store.load_session(1).unwrap().expect("session readable");
    assert_eq!(loaded.id, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
