//! Differential suite for the per-session secondary index: for every
//! session id (live, closed, snapshot-only, or unknown) and across
//! rotation, reopen, and compaction, the indexed
//! [`SessionStore::load_session`] must return exactly what the full-scan
//! reference path [`SessionStore::load_session_unindexed`] returns.

use qhorn_core::{Obj, Response};
use qhorn_engine::session::{Exchange, LearnerKind};
use qhorn_lang::parse_with_arity;
use qhorn_store::{
    FsyncPolicy, LogRecord, PersistedSession, SessionMeta, SessionStore, SnapshotEntry, StoreConfig,
};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("session-index-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn meta(dataset: &str) -> SessionMeta {
    SessionMeta {
        dataset: dataset.into(),
        size: 30,
        learner: LearnerKind::Qhorn1,
        max_questions: Some(500),
    }
}

fn exchange(bits: &str, response: Response) -> Exchange {
    Exchange {
        question: Obj::from_bits(bits),
        from_store: false,
        response,
    }
}

/// Appends a varied history for `id`: create, exchanges, a correction, a
/// learned query, a verification.
fn drive(store: &mut SessionStore, id: u64, exchanges: usize) {
    store
        .append(&LogRecord::SessionCreated {
            id,
            meta: meta("chocolates"),
        })
        .unwrap();
    for i in 0..exchanges {
        let label = if i % 3 == 0 {
            Response::NonAnswer
        } else {
            Response::Answer
        };
        store
            .append(&LogRecord::ExchangeAppended {
                id,
                exchange: exchange(if i % 2 == 0 { "110 011" } else { "000" }, label),
            })
            .unwrap();
    }
    if exchanges > 1 {
        store
            .append(&LogRecord::Corrected {
                id,
                corrections: vec![(0, Response::Answer)],
            })
            .unwrap();
    }
    store
        .append(&LogRecord::QueryLearned {
            id,
            query: parse_with_arity("all x1; some x2 x3", 3).unwrap(),
        })
        .unwrap();
    store
        .append(&LogRecord::Verified { id, verified: true })
        .unwrap();
}

/// Asserts indexed ≡ full-scan for every id in `ids` (which should
/// include ids that do not exist and ids that were closed).
fn assert_paths_agree(store: &SessionStore, ids: &[u64]) {
    for &id in ids {
        let indexed = store.load_session(id).unwrap();
        let scanned = store.load_session_unindexed(id).unwrap();
        assert_eq!(indexed, scanned, "paths diverge for session {id}");
    }
}

#[test]
fn indexed_load_matches_full_scan_across_rotation() {
    let dir = temp_dir("rotation");
    let cfg = StoreConfig {
        fsync: FsyncPolicy::Never,
        segment_max_bytes: 256, // force many segments
        ..StoreConfig::new(dir.clone())
    };
    let (mut store, _) = SessionStore::open(&cfg).unwrap();
    for id in 1..=6u64 {
        drive(&mut store, id, id as usize);
    }
    store.append(&LogRecord::SessionClosed { id: 3 }).unwrap();
    // Store-level records must not perturb the index.
    store
        .append(&LogRecord::DatasetDropped {
            name: "nope".into(),
        })
        .unwrap();
    let probe: Vec<u64> = (0..=8).collect(); // includes unknown 0, 7, 8
    assert_paths_agree(&store, &probe);
    assert!(store.load_session(3).unwrap().is_none(), "closed is gone");
    assert!(store.load_session(5).unwrap().is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn index_is_rebuilt_on_reopen() {
    let dir = temp_dir("reopen");
    let cfg = StoreConfig {
        fsync: FsyncPolicy::Always,
        segment_max_bytes: 512,
        ..StoreConfig::new(dir.clone())
    };
    {
        let (mut store, _) = SessionStore::open(&cfg).unwrap();
        for id in 1..=4u64 {
            drive(&mut store, id, 3);
        }
        store.append(&LogRecord::SessionClosed { id: 2 }).unwrap();
    }
    // Crash-reopen: the index exists only in memory, so this exercises
    // the recovery-scan rebuild.
    let (mut store, recovered) = SessionStore::open(&cfg).unwrap();
    assert_eq!(recovered.sessions.len(), 3);
    let probe: Vec<u64> = (0..=6).collect();
    assert_paths_agree(&store, &probe);
    // Appends after reopen extend the rebuilt index seamlessly.
    drive(&mut store, 9, 2);
    assert_paths_agree(&store, &[2, 9]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn index_survives_compaction_and_snapshot_only_sessions() {
    let dir = temp_dir("compaction");
    let cfg = StoreConfig {
        fsync: FsyncPolicy::Never,
        segment_max_bytes: 256,
        ..StoreConfig::new(dir.clone())
    };
    let (mut store, _) = SessionStore::open(&cfg).unwrap();
    for id in 1..=5u64 {
        drive(&mut store, id, 2);
    }
    store.append(&LogRecord::SessionClosed { id: 4 }).unwrap();

    // Compact: capture a freshened state for session 1, let the others
    // be carried forward from disk. Sessions 2, 3, 5 become
    // snapshot-only (all their frames predate the boundary).
    let boundary = store.rotate().unwrap();
    let mut captured = PersistedSession::new(1, meta("chocolates"));
    captured.answered = 99; // visibly distinct captured state
    store
        .write_snapshot(
            &[SnapshotEntry {
                through_seq: store.last_seq(),
                session: captured,
            }],
            boundary,
        )
        .unwrap();

    let probe: Vec<u64> = (0..=7).collect();
    assert_paths_agree(&store, &probe);
    assert_eq!(store.load_session(1).unwrap().unwrap().answered, 99);
    assert!(store.load_session(4).unwrap().is_none());

    // New history after compaction lands in the index and still agrees.
    drive(&mut store, 6, 4);
    store
        .append(&LogRecord::ExchangeAppended {
            id: 5,
            exchange: exchange("111", Response::Answer),
        })
        .unwrap();
    assert_paths_agree(&store, &probe);

    // And a reopen after compaction rebuilds the pruned index correctly.
    drop(store);
    let (store, _) = SessionStore::open(&cfg).unwrap();
    assert_paths_agree(&store, &probe);
    let _ = std::fs::remove_dir_all(&dir);
}
