//! The record model: what the log appends and what recovery rebuilds.
//!
//! A session's durable history is a sequence of [`LogRecord`]s; replaying
//! them (in global `seq` order, on top of an optional snapshot) rebuilds a
//! [`PersistedSession`] — the log *is* the membership-query transcript, so
//! recovery is replay.

use qhorn_core::{Obj, Query, Response};
use qhorn_engine::session::{Exchange, LearnerKind};
use qhorn_json::{FromJson, Json, JsonError, ToJson};
use qhorn_relation::DatasetDef;
use std::collections::BTreeMap;

/// How a session was opened — enough for the service to rebuild the
/// dataset and relaunch the right learner on recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionMeta {
    /// Catalog dataset name.
    pub dataset: String,
    /// Object count for generated datasets. Logs written before explicit
    /// size validation may carry `0` (the old "default" encoding); the
    /// service normalizes that to its default on recovery.
    pub size: usize,
    /// Which learner runs the session.
    pub learner: LearnerKind,
    /// Optional hard question budget.
    pub max_questions: Option<usize>,
}

impl ToJson for SessionMeta {
    fn to_json(&self) -> Json {
        Json::object([
            ("dataset", self.dataset.to_json()),
            ("size", self.size.to_json()),
            ("learner", self.learner.to_json()),
            ("max_questions", self.max_questions.to_json()),
        ])
    }
}

impl FromJson for SessionMeta {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(SessionMeta {
            dataset: String::from_json(j.field("dataset")?)?,
            size: usize::from_json(j.field("size")?)?,
            learner: LearnerKind::from_json(j.field("learner")?)?,
            max_questions: Option::<usize>::from_json(j.field("max_questions")?)?,
        })
    }
}

/// One durable event in a session's life. Records carry the session id;
/// the store stamps each with a global monotonic sequence number when it
/// frames the record onto disk.
#[derive(Clone, Debug, PartialEq)]
pub enum LogRecord {
    /// A session was opened.
    SessionCreated {
        /// The session id.
        id: u64,
        /// How to rebuild it.
        meta: SessionMeta,
    },
    /// The user answered a membership question.
    ExchangeAppended {
        /// The session id.
        id: u64,
        /// The answered exchange.
        exchange: Exchange,
    },
    /// The user corrected earlier answers (indices into the user-visible
    /// question order, as the protocol ships them).
    Corrected {
        /// The session id.
        id: u64,
        /// `(question index, corrected label)` pairs.
        corrections: Vec<(usize, Response)>,
    },
    /// Learning completed with this query.
    QueryLearned {
        /// The session id.
        id: u64,
        /// The learned query.
        query: Query,
    },
    /// A verification run finished with this outcome (§4's learn-then-
    /// verify dialogue); recovery restores the session as verified
    /// without needing a compaction snapshot.
    Verified {
        /// The session id.
        id: u64,
        /// `true` iff the user agreed with every expected label.
        verified: bool,
    },
    /// The session was explicitly closed; recovery drops it.
    SessionClosed {
        /// The session id.
        id: u64,
    },
    /// A user-uploaded dataset was registered with the catalog; recovery
    /// re-registers it so sessions created over it can rebuild their
    /// stores. Compaction re-appends the current registrations into the
    /// fresh log (datasets are not part of session snapshots).
    DatasetRegistered {
        /// The complete definition (name, relation, propositions, hints).
        def: DatasetDef,
    },
    /// A user-uploaded dataset was dropped; recovery forgets it.
    DatasetDropped {
        /// The dropped dataset's catalog name.
        name: String,
    },
    /// A snapshot file was written covering everything up to
    /// `through_seq` (informational marker; recovery ignores it).
    SnapshotWritten {
        /// Last record sequence number the snapshot covers.
        through_seq: u64,
        /// Sessions the snapshot holds.
        sessions: u64,
    },
}

impl LogRecord {
    /// The record kind's stable on-disk name.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            LogRecord::SessionCreated { .. } => "session_created",
            LogRecord::ExchangeAppended { .. } => "exchange",
            LogRecord::Corrected { .. } => "corrected",
            LogRecord::QueryLearned { .. } => "query_learned",
            LogRecord::Verified { .. } => "verified",
            LogRecord::SessionClosed { .. } => "session_closed",
            LogRecord::DatasetRegistered { .. } => "dataset_registered",
            LogRecord::DatasetDropped { .. } => "dataset_dropped",
            LogRecord::SnapshotWritten { .. } => "snapshot_written",
        }
    }

    /// The session this record belongs to (`None` for store-level
    /// markers).
    #[must_use]
    pub fn session_id(&self) -> Option<u64> {
        match self {
            LogRecord::SessionCreated { id, .. }
            | LogRecord::ExchangeAppended { id, .. }
            | LogRecord::Corrected { id, .. }
            | LogRecord::QueryLearned { id, .. }
            | LogRecord::Verified { id, .. }
            | LogRecord::SessionClosed { id } => Some(*id),
            LogRecord::DatasetRegistered { .. }
            | LogRecord::DatasetDropped { .. }
            | LogRecord::SnapshotWritten { .. } => None,
        }
    }

    /// Serializes as the framed payload, with the store-assigned `seq`
    /// first so a human scanning the log sees ordering at a glance.
    #[must_use]
    pub(crate) fn to_payload(&self, seq: u64) -> Vec<u8> {
        let mut pairs = vec![
            ("seq".to_string(), seq.to_json()),
            ("kind".to_string(), Json::Str(self.kind().into())),
        ];
        match self {
            LogRecord::SessionCreated { id, meta } => {
                pairs.push(("id".into(), id.to_json()));
                pairs.push(("meta".into(), meta.to_json()));
            }
            LogRecord::ExchangeAppended { id, exchange } => {
                pairs.push(("id".into(), id.to_json()));
                pairs.push(("exchange".into(), exchange.to_json()));
            }
            LogRecord::Corrected { id, corrections } => {
                pairs.push(("id".into(), id.to_json()));
                pairs.push((
                    "corrections".into(),
                    Json::array(
                        corrections
                            .iter()
                            .map(|(i, r)| Json::array([i.to_json(), r.to_json()])),
                    ),
                ));
            }
            LogRecord::QueryLearned { id, query } => {
                pairs.push(("id".into(), id.to_json()));
                pairs.push(("query".into(), query.to_json()));
            }
            LogRecord::Verified { id, verified } => {
                pairs.push(("id".into(), id.to_json()));
                pairs.push(("verified".into(), verified.to_json()));
            }
            LogRecord::SessionClosed { id } => {
                pairs.push(("id".into(), id.to_json()));
            }
            LogRecord::DatasetRegistered { def } => {
                pairs.push(("def".into(), def.to_json()));
            }
            LogRecord::DatasetDropped { name } => {
                pairs.push(("name".into(), name.to_json()));
            }
            LogRecord::SnapshotWritten {
                through_seq,
                sessions,
            } => {
                pairs.push(("through_seq".into(), through_seq.to_json()));
                pairs.push(("sessions".into(), sessions.to_json()));
            }
        }
        Json::Obj(pairs).to_string().into_bytes()
    }

    /// Parses a framed payload back into `(seq, record)`.
    pub(crate) fn from_payload(bytes: &[u8]) -> Result<(u64, LogRecord), JsonError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| JsonError::msg("record payload is not UTF-8"))?;
        let j = Json::parse(text)?;
        let seq = u64::from_json(j.field("seq")?)?;
        let kind = String::from_json(j.field("kind")?)?;
        let rec = match kind.as_str() {
            "session_created" => LogRecord::SessionCreated {
                id: u64::from_json(j.field("id")?)?,
                meta: SessionMeta::from_json(j.field("meta")?)?,
            },
            "exchange" => LogRecord::ExchangeAppended {
                id: u64::from_json(j.field("id")?)?,
                exchange: Exchange::from_json(j.field("exchange")?)?,
            },
            "corrected" => {
                let pairs = j
                    .field("corrections")?
                    .as_arr()
                    .ok_or_else(|| JsonError::msg("corrections must be an array"))?;
                let mut corrections = Vec::with_capacity(pairs.len());
                for p in pairs {
                    let [i, r] = p
                        .as_arr()
                        .ok_or_else(|| JsonError::msg("correction must be [index, response]"))?
                    else {
                        return Err(JsonError::msg("correction must be [index, response]"));
                    };
                    corrections.push((usize::from_json(i)?, Response::from_json(r)?));
                }
                LogRecord::Corrected {
                    id: u64::from_json(j.field("id")?)?,
                    corrections,
                }
            }
            "query_learned" => LogRecord::QueryLearned {
                id: u64::from_json(j.field("id")?)?,
                query: Query::from_json(j.field("query")?)?,
            },
            "verified" => LogRecord::Verified {
                id: u64::from_json(j.field("id")?)?,
                verified: bool::from_json(j.field("verified")?)?,
            },
            "session_closed" => LogRecord::SessionClosed {
                id: u64::from_json(j.field("id")?)?,
            },
            "dataset_registered" => LogRecord::DatasetRegistered {
                def: DatasetDef::from_json(j.field("def")?)?,
            },
            "dataset_dropped" => LogRecord::DatasetDropped {
                name: String::from_json(j.field("name")?)?,
            },
            "snapshot_written" => LogRecord::SnapshotWritten {
                through_seq: u64::from_json(j.field("through_seq")?)?,
                sessions: u64::from_json(j.field("sessions")?)?,
            },
            other => return Err(JsonError::msg(format!("unknown record kind `{other}`"))),
        };
        Ok((seq, rec))
    }
}

/// A session's full durable state, as recovery rebuilds it (and as
/// snapshot files store it).
#[derive(Clone, Debug, PartialEq)]
pub struct PersistedSession {
    /// The session id.
    pub id: u64,
    /// How to rebuild the dataset/learner.
    pub meta: SessionMeta,
    /// Questions shown to the user, in order (the index space the
    /// protocol's `Correct` uses).
    pub asked: Vec<Obj>,
    /// Questions answered.
    pub answered: usize,
    /// Verification result, when one ran (replayed from
    /// [`LogRecord::Verified`] and preserved by snapshots).
    pub verified: Option<bool>,
    /// The answered transcript, corrections applied.
    pub transcript: Vec<Exchange>,
    /// The learned query, when learning completed.
    pub learned: Option<Query>,
}

impl PersistedSession {
    /// An empty session fresh from a [`LogRecord::SessionCreated`].
    #[must_use]
    pub fn new(id: u64, meta: SessionMeta) -> Self {
        PersistedSession {
            id,
            meta,
            asked: Vec::new(),
            answered: 0,
            verified: None,
            transcript: Vec::new(),
            learned: None,
        }
    }
}

impl ToJson for PersistedSession {
    fn to_json(&self) -> Json {
        Json::object([
            ("id", self.id.to_json()),
            ("meta", self.meta.to_json()),
            ("asked", self.asked.to_json()),
            ("answered", self.answered.to_json()),
            ("verified", self.verified.to_json()),
            ("transcript", self.transcript.to_json()),
            ("learned", self.learned.to_json()),
        ])
    }
}

impl FromJson for PersistedSession {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(PersistedSession {
            id: u64::from_json(j.field("id")?)?,
            meta: SessionMeta::from_json(j.field("meta")?)?,
            asked: Vec::<Obj>::from_json(j.field("asked")?)?,
            answered: usize::from_json(j.field("answered")?)?,
            verified: Option::<bool>::from_json(j.field("verified")?)?,
            transcript: Vec::<Exchange>::from_json(j.field("transcript")?)?,
            learned: Option::<Query>::from_json(j.field("learned")?)?,
        })
    }
}

/// One snapshot-file entry: a session's state plus the last log sequence
/// number that state reflects. Recovery applies a log record to a session
/// iff `record.seq > through_seq`, which makes snapshot + replay exact
/// even when records land concurrently with snapshot capture.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotEntry {
    /// Last record sequence number reflected in `session`.
    pub through_seq: u64,
    /// The captured state.
    pub session: PersistedSession,
}

impl ToJson for SnapshotEntry {
    fn to_json(&self) -> Json {
        Json::object([
            ("through_seq", self.through_seq.to_json()),
            ("session", self.session.to_json()),
        ])
    }
}

impl FromJson for SnapshotEntry {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(SnapshotEntry {
            through_seq: u64::from_json(j.field("through_seq")?)?,
            session: PersistedSession::from_json(j.field("session")?)?,
        })
    }
}

/// Replay state: sessions being rebuilt, keyed by id, plus the registered
/// dataset definitions (keyed by name, last registration wins).
pub(crate) struct Replayer {
    sessions: BTreeMap<u64, SnapshotEntry>,
    datasets: BTreeMap<String, DatasetDef>,
    /// Highest session id ever seen, including closed sessions — the
    /// registry resumes id assignment above this so a closed id is never
    /// reused (reuse would make old log records apply to the new session).
    max_id: u64,
}

impl Replayer {
    pub(crate) fn new() -> Self {
        Replayer {
            sessions: BTreeMap::new(),
            datasets: BTreeMap::new(),
            max_id: 0,
        }
    }

    /// Seeds the replayer from snapshot-file entries.
    pub(crate) fn seed(&mut self, entries: Vec<SnapshotEntry>) {
        for e in entries {
            self.max_id = self.max_id.max(e.session.id);
            self.sessions.insert(e.session.id, e);
        }
    }

    /// Applies one log record; records at or below a session's
    /// `through_seq` are already reflected in its snapshot and skipped.
    pub(crate) fn apply(&mut self, seq: u64, rec: LogRecord) {
        if let Some(id) = rec.session_id() {
            self.max_id = self.max_id.max(id);
        }
        match rec {
            LogRecord::SessionCreated { id, meta } => {
                let entry = self.sessions.entry(id).or_insert_with(|| SnapshotEntry {
                    through_seq: 0,
                    session: PersistedSession::new(id, meta.clone()),
                });
                if seq <= entry.through_seq {
                    return;
                }
                entry.session.meta = meta;
            }
            LogRecord::ExchangeAppended { id, exchange } => {
                if let Some(entry) = self.fresh(id, seq) {
                    entry.session.asked.push(exchange.question.clone());
                    entry.session.transcript.push(exchange);
                    entry.session.answered += 1;
                }
            }
            LogRecord::Corrected { id, corrections } => {
                if let Some(entry) = self.fresh(id, seq) {
                    let s = &mut entry.session;
                    for &(idx, r) in &corrections {
                        let Some(q) = s.asked.get(idx) else { continue };
                        let q = q.clone();
                        for e in &mut s.transcript {
                            if e.question == q {
                                e.response = r;
                            }
                        }
                    }
                    // A correction restarts learning; the replayed learner
                    // writes a fresh `QueryLearned` when it completes.
                    s.learned = None;
                    s.verified = None;
                }
            }
            LogRecord::QueryLearned { id, query } => {
                if let Some(entry) = self.fresh(id, seq) {
                    entry.session.learned = Some(query);
                }
            }
            LogRecord::Verified { id, verified } => {
                if let Some(entry) = self.fresh(id, seq) {
                    entry.session.verified = Some(verified);
                }
            }
            LogRecord::SessionClosed { id } => {
                // Removal at apply time: a later `SessionCreated` for the
                // same id (only possible for genuinely new sessions, since
                // id assignment resumes above `max_id`) starts fresh.
                self.sessions.remove(&id);
            }
            // Datasets are not snapshot-covered, so no `through_seq`
            // gating: records apply in seq order, last one wins.
            LogRecord::DatasetRegistered { def } => {
                self.datasets.insert(def.name.clone(), def);
            }
            LogRecord::DatasetDropped { name } => {
                self.datasets.remove(&name);
            }
            LogRecord::SnapshotWritten { .. } => {}
        }
    }

    /// The session entry, if it exists and `seq` is newer than its
    /// snapshot coverage.
    fn fresh(&mut self, id: u64, seq: u64) -> Option<&mut SnapshotEntry> {
        self.sessions.get_mut(&id).filter(|e| seq > e.through_seq)
    }

    /// Highest session id ever seen (live or closed).
    pub(crate) fn max_id(&self) -> u64 {
        self.max_id
    }

    /// Drains the registered (and not since dropped) dataset definitions,
    /// in name order.
    pub(crate) fn take_datasets(&mut self) -> Vec<DatasetDef> {
        std::mem::take(&mut self.datasets).into_values().collect()
    }

    /// Finishes replay: live sessions in id order.
    pub(crate) fn finish(self) -> Vec<PersistedSession> {
        self.sessions.into_values().map(|e| e.session).collect()
    }

    /// Finishes replay keeping per-session coverage (compaction carries
    /// forward sessions the caller did not re-capture).
    pub(crate) fn finish_entries(self) -> Vec<SnapshotEntry> {
        self.sessions.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qhorn_lang::parse_with_arity;

    fn meta() -> SessionMeta {
        SessionMeta {
            dataset: "chocolates".into(),
            size: 30,
            learner: LearnerKind::Qhorn1,
            max_questions: Some(100),
        }
    }

    fn exchange(bits: &str, response: Response) -> Exchange {
        Exchange {
            question: Obj::from_bits(bits),
            from_store: false,
            response,
        }
    }

    fn dataset_def() -> DatasetDef {
        qhorn_relation::datasets::chocolates::dataset_def("my-shop")
    }

    #[test]
    fn records_round_trip_through_payloads() {
        let records = [
            LogRecord::SessionCreated {
                id: 3,
                meta: meta(),
            },
            LogRecord::ExchangeAppended {
                id: 3,
                exchange: exchange("110 011", Response::Answer),
            },
            LogRecord::Corrected {
                id: 3,
                corrections: vec![(0, Response::NonAnswer), (2, Response::Answer)],
            },
            LogRecord::QueryLearned {
                id: 3,
                query: parse_with_arity("all x1; some x2 x3", 3).unwrap(),
            },
            LogRecord::Verified {
                id: 3,
                verified: true,
            },
            LogRecord::SessionClosed { id: 3 },
            LogRecord::DatasetRegistered { def: dataset_def() },
            LogRecord::DatasetDropped {
                name: "my-shop".into(),
            },
            LogRecord::SnapshotWritten {
                through_seq: 41,
                sessions: 2,
            },
        ];
        for (i, rec) in records.iter().enumerate() {
            let payload = rec.to_payload(i as u64 + 1);
            let (seq, back) = LogRecord::from_payload(&payload).unwrap();
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(&back, rec);
        }
    }

    #[test]
    fn replay_builds_corrected_state() {
        let mut r = Replayer::new();
        r.apply(
            1,
            LogRecord::SessionCreated {
                id: 1,
                meta: meta(),
            },
        );
        r.apply(
            2,
            LogRecord::ExchangeAppended {
                id: 1,
                exchange: exchange("111", Response::Answer),
            },
        );
        r.apply(
            3,
            LogRecord::ExchangeAppended {
                id: 1,
                exchange: exchange("001", Response::NonAnswer),
            },
        );
        let q = parse_with_arity("all x1", 3).unwrap();
        r.apply(
            4,
            LogRecord::QueryLearned {
                id: 1,
                query: q.clone(),
            },
        );
        r.apply(
            5,
            LogRecord::Corrected {
                id: 1,
                corrections: vec![(0, Response::NonAnswer)],
            },
        );
        r.apply(
            6,
            LogRecord::QueryLearned {
                id: 1,
                query: q.clone(),
            },
        );
        let sessions = r.finish();
        assert_eq!(sessions.len(), 1);
        let s = &sessions[0];
        assert_eq!(s.answered, 2);
        assert_eq!(s.transcript[0].response, Response::NonAnswer);
        assert_eq!(s.transcript[1].response, Response::NonAnswer);
        assert_eq!(s.learned.as_ref(), Some(&q));
    }

    #[test]
    fn replay_skips_records_covered_by_the_snapshot() {
        let mut r = Replayer::new();
        let mut snap = PersistedSession::new(7, meta());
        snap.asked.push(Obj::from_bits("111"));
        snap.transcript.push(exchange("111", Response::Answer));
        snap.answered = 1;
        r.seed(vec![SnapshotEntry {
            through_seq: 10,
            session: snap,
        }]);
        // Seq 9 is already in the snapshot; applying it again must not
        // duplicate the exchange.
        r.apply(
            9,
            LogRecord::ExchangeAppended {
                id: 7,
                exchange: exchange("111", Response::Answer),
            },
        );
        r.apply(
            11,
            LogRecord::ExchangeAppended {
                id: 7,
                exchange: exchange("000", Response::NonAnswer),
            },
        );
        let sessions = r.finish();
        assert_eq!(sessions[0].answered, 2);
        assert_eq!(sessions[0].transcript.len(), 2);
    }

    #[test]
    fn closed_sessions_stay_closed_even_with_a_stale_snapshot() {
        let mut r = Replayer::new();
        r.seed(vec![SnapshotEntry {
            through_seq: 5,
            session: PersistedSession::new(2, meta()),
        }]);
        r.apply(6, LogRecord::SessionClosed { id: 2 });
        assert!(r.finish().is_empty());
    }

    #[test]
    fn verification_outcomes_replay_and_corrections_reset_them() {
        let mut r = Replayer::new();
        r.apply(
            1,
            LogRecord::SessionCreated {
                id: 1,
                meta: meta(),
            },
        );
        let q = parse_with_arity("all x1", 3).unwrap();
        r.apply(2, LogRecord::QueryLearned { id: 1, query: q });
        r.apply(
            3,
            LogRecord::Verified {
                id: 1,
                verified: true,
            },
        );
        // A later correction invalidates the verification outcome…
        r.apply(
            4,
            LogRecord::Corrected {
                id: 1,
                corrections: vec![],
            },
        );
        // …and a fresh run can record a new one.
        r.apply(
            5,
            LogRecord::Verified {
                id: 1,
                verified: false,
            },
        );
        let sessions = r.finish();
        assert_eq!(sessions[0].verified, Some(false));
        assert_eq!(sessions[0].learned, None, "correction reset the query");
    }

    #[test]
    fn verified_records_below_snapshot_coverage_are_skipped() {
        let mut r = Replayer::new();
        let mut snap = PersistedSession::new(4, meta());
        snap.verified = Some(true);
        r.seed(vec![SnapshotEntry {
            through_seq: 10,
            session: snap,
        }]);
        // Stale record (already reflected in the snapshot): ignored.
        r.apply(
            9,
            LogRecord::Verified {
                id: 4,
                verified: false,
            },
        );
        assert_eq!(r.finish()[0].verified, Some(true));
    }

    #[test]
    fn dataset_records_replay_with_last_registration_winning() {
        let mut r = Replayer::new();
        r.apply(1, LogRecord::DatasetRegistered { def: dataset_def() });
        let mut renamed = dataset_def();
        renamed.name = "other".into();
        r.apply(2, LogRecord::DatasetRegistered { def: renamed });
        // Re-registration under the same name overwrites.
        let mut bigger = dataset_def();
        bigger
            .relation
            .push(qhorn_relation::NestedObject::new(
                qhorn_relation::DataTuple::new([qhorn_relation::Value::str("Extra")]),
                vec![],
            ))
            .unwrap();
        r.apply(3, LogRecord::DatasetRegistered { def: bigger });
        r.apply(
            4,
            LogRecord::DatasetDropped {
                name: "other".into(),
            },
        );
        let datasets = r.take_datasets();
        assert_eq!(datasets.len(), 1);
        assert_eq!(datasets[0].name, "my-shop");
        assert_eq!(datasets[0].relation.len(), 3, "last registration won");
        // Dropping an unknown name is a no-op.
        let mut r = Replayer::new();
        r.apply(1, LogRecord::DatasetDropped { name: "x".into() });
        assert!(r.take_datasets().is_empty());
    }

    #[test]
    fn unknown_session_records_are_ignored() {
        let mut r = Replayer::new();
        r.apply(
            1,
            LogRecord::ExchangeAppended {
                id: 99,
                exchange: exchange("1", Response::Answer),
            },
        );
        assert!(r.finish().is_empty());
    }
}
