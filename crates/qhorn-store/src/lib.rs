//! # qhorn-store
//!
//! An embedded, append-only **durable store** for learning-session state —
//! the persistence subsystem under `qhorn-service`. The paper's
//! interactive dialogues (question → answer → correction → verification)
//! are long-lived; this crate makes them survive process crashes: the log
//! *is* the membership-query transcript, so **recovery is replay**.
//!
//! Std-only, no external dependencies (consistent with the workspace's
//! vendored-deps constraint). Three pieces:
//!
//! * **Append-only log** ([`SessionStore::append`]) — segmented files of
//!   length-prefixed, CRC-32-checksummed JSON records ([`LogRecord`]:
//!   `SessionCreated`, `ExchangeAppended`, `Corrected`, `QueryLearned`,
//!   `SessionClosed`, `DatasetRegistered`/`DatasetDropped` for uploaded
//!   dataset definitions, `SnapshotWritten`), with a configurable
//!   [`FsyncPolicy`] (`Always` / `EveryN` / `Never`). One shared log for
//!   all sessions (not file-per-session): a single fsync stream batches
//!   durability across concurrent dialogues, and compaction/recovery scan
//!   one directory; the cost — recovery reads other sessions' records —
//!   is bounded by snapshotting.
//! * **Snapshot + compaction** ([`SessionStore::write_snapshot`]) — a full
//!   [`PersistedSession`] per live session is written to a snapshot file
//!   (write-tmp → fsync → atomic rename), then wholly-covered sealed
//!   segments are deleted. Each entry records the log sequence number its
//!   capture reflects, so snapshot + replay is exact even with records
//!   landing concurrently.
//! * **Recovery** ([`SessionStore::open`]) — scan the snapshot and
//!   segments, truncate torn tails (bad checksum / short frame ⇒ cut at
//!   the last valid record), and rebuild a [`RecoveredState`] of live
//!   sessions. Recovery never panics on corrupt input and never
//!   resurrects a half-written record.
//!
//! ```no_run
//! use qhorn_store::{LogRecord, SessionMeta, SessionStore, StoreConfig};
//! use qhorn_engine::session::LearnerKind;
//!
//! let config = StoreConfig::new("/var/lib/qhorn/sessions");
//! let (mut store, recovered) = SessionStore::open(&config).unwrap();
//! println!("{} sessions survived the restart", recovered.sessions.len());
//! store
//!     .append(&LogRecord::SessionCreated {
//!         id: recovered.max_session_id + 1,
//!         meta: SessionMeta {
//!             dataset: "chocolates".into(),
//!             size: 30,
//!             learner: LearnerKind::Qhorn1,
//!             max_questions: None,
//!         },
//!     })
//!     .unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod crc;
mod log;
mod record;
mod sync;

pub use log::{RecoveredState, SessionStore};
pub use record::{LogRecord, PersistedSession, SessionMeta, SnapshotEntry};
pub use sync::SyncSessionStore;

use qhorn_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Which store operation a [`StoreObserver`] is being told about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreOp {
    /// One record framed and written to the active segment (rotation, if
    /// any, is included in the reported duration).
    Append,
    /// An `fsync` issued by the durability policy after an append.
    Fsync,
    /// A snapshot written and covered segments deleted.
    Compaction,
}

/// A callback invoked synchronously after timed store operations — the
/// hook the service layer uses to attach store spans to request traces.
/// Implementations must be cheap and must not call back into the store.
pub trait StoreObserver: Send {
    /// Reports one completed operation: what ran, how long it took, and
    /// how many payload bytes it moved (0 for [`StoreOp::Fsync`]).
    fn observe(&self, op: StoreOp, duration: Duration, bytes: u64);
}

/// When appended records reach disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: a crash loses nothing acknowledged.
    Always,
    /// `fsync` after every `n` records: a crash loses at most the last
    /// `n - 1` acknowledged records (plus whatever the OS had not yet
    /// written back on its own).
    EveryN(u32),
    /// Never `fsync`; the OS writes back on its own schedule. Fastest,
    /// weakest — still safe against process crashes (the kernel holds the
    /// data), but not against power loss.
    Never,
}

/// Store construction parameters.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Directory holding the log segments and snapshot.
    pub dir: PathBuf,
    /// Durability policy for appends.
    pub fsync: FsyncPolicy,
    /// Rotate the active segment once it exceeds this size.
    pub segment_max_bytes: u64,
    /// `Registry::sweep` triggers compaction once the live log exceeds
    /// this size.
    pub compact_threshold_bytes: u64,
}

impl StoreConfig {
    /// A config with production-ish defaults: `EveryN(8)`, 4 MiB
    /// segments, compaction past 16 MiB of live log.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryN(8),
            segment_max_bytes: 4 << 20,
            compact_threshold_bytes: 16 << 20,
        }
    }
}

/// Store failures.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// (De)serialization failure on a non-recovery path.
    Json(JsonError),
    /// Structurally impossible payload (e.g. a record over the frame
    /// size limit).
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Json(e) => write!(f, "store json error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store payload: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<JsonError> for StoreError {
    fn from(e: JsonError) -> Self {
        StoreError::Json(e)
    }
}

/// Store counters, as served by the service's `Stats` protocol reply.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended since open (cumulative).
    pub records_appended: u64,
    /// Frame bytes appended since open (cumulative).
    pub bytes_appended: u64,
    /// Current segment files (sealed + active).
    pub segments: u64,
    /// Bytes across all current segments.
    pub live_log_bytes: u64,
    /// Compactions run since open (cumulative).
    pub compactions: u64,
    /// Log sequence number the latest compaction covered (0 = never).
    pub last_compaction_seq: u64,
    /// Sessions rebuilt by recovery at open.
    pub recovered_sessions: u64,
    /// Torn tails truncated by recovery at open.
    pub torn_truncations: u64,
    /// Sessions captured in the current snapshot file (0 = no snapshot).
    pub snapshot_sessions: u64,
}

impl ToJson for StoreStats {
    fn to_json(&self) -> Json {
        Json::object([
            ("records_appended", self.records_appended.to_json()),
            ("bytes_appended", self.bytes_appended.to_json()),
            ("segments", self.segments.to_json()),
            ("live_log_bytes", self.live_log_bytes.to_json()),
            ("compactions", self.compactions.to_json()),
            ("last_compaction_seq", self.last_compaction_seq.to_json()),
            ("recovered_sessions", self.recovered_sessions.to_json()),
            ("torn_truncations", self.torn_truncations.to_json()),
            ("snapshot_sessions", self.snapshot_sessions.to_json()),
        ])
    }
}

impl FromJson for StoreStats {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(StoreStats {
            records_appended: u64::from_json(j.field("records_appended")?)?,
            bytes_appended: u64::from_json(j.field("bytes_appended")?)?,
            segments: u64::from_json(j.field("segments")?)?,
            live_log_bytes: u64::from_json(j.field("live_log_bytes")?)?,
            compactions: u64::from_json(j.field("compactions")?)?,
            last_compaction_seq: u64::from_json(j.field("last_compaction_seq")?)?,
            recovered_sessions: u64::from_json(j.field("recovered_sessions")?)?,
            torn_truncations: u64::from_json(j.field("torn_truncations")?)?,
            snapshot_sessions: u64::from_json(j.field("snapshot_sessions")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_stats_round_trip() {
        let stats = StoreStats {
            records_appended: 41,
            bytes_appended: 9000,
            segments: 3,
            live_log_bytes: 4096,
            compactions: 2,
            last_compaction_seq: 37,
            recovered_sessions: 5,
            torn_truncations: 1,
            snapshot_sessions: 4,
        };
        let json = qhorn_json::to_string(&stats);
        let back: StoreStats = qhorn_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn default_config_is_sane() {
        let c = StoreConfig::new("/tmp/x");
        assert!(c.segment_max_bytes > 0);
        assert!(c.compact_threshold_bytes >= c.segment_max_bytes);
        assert_eq!(c.fsync, FsyncPolicy::EveryN(8));
    }
}
