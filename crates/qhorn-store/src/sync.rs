//! Shared-ownership synchronization for [`SessionStore`].
//!
//! The store itself is deliberately not internally synchronized (see
//! `log.rs`); historically each embedder wrapped it in its own
//! `Mutex<SessionStore>`, which left the store's position in the lock
//! hierarchy implicit. [`SyncSessionStore`] centralizes that wrapper
//! here so the `store.session_store` lock class is owned by the crate
//! that owns the data: every embedder shares one class, and with the
//! `lockdep` feature on, any acquisition that contradicts the documented
//! `shard < entry < store` / `shard < snapshots < store` hierarchy
//! panics at the acquiring site.

use crate::log::SessionStore;
use qhorn_lockdep::{LockClass, OrderedMutex, OrderedMutexGuard};

/// A [`SessionStore`] behind a class-tagged mutex.
///
/// All access goes through [`SyncSessionStore::lock`], which recovers
/// from poisoning: a panic inside one store operation must not wedge
/// every other session's durability path (the PR-9 rule). Recovery is
/// sound because the store's mutating operations are append-then-update
/// — a panic can lose the in-memory tail position at worst, and
/// recovery replays the log to rebuild it.
pub struct SyncSessionStore {
    inner: OrderedMutex<SessionStore>,
}

impl SyncSessionStore {
    /// Wraps `store` under the shared `store.session_store` lock class.
    pub fn new(store: SessionStore) -> SyncSessionStore {
        SyncSessionStore {
            inner: OrderedMutex::new(LockClass::new("store.session_store"), store),
        }
    }

    /// Acquires the store, recovering from poisoning.
    #[track_caller]
    pub fn lock(&self) -> OrderedMutexGuard<'_, SessionStore> {
        self.inner.lock_recover()
    }

    /// Consumes the wrapper, returning the store even if poisoned.
    pub fn into_inner(self) -> SessionStore {
        self.inner.into_inner_recover()
    }
}

impl std::fmt::Debug for SyncSessionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncSessionStore").finish_non_exhaustive()
    }
}
