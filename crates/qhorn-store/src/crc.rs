//! Hand-rolled CRC-32 (IEEE 802.3: reflected, polynomial `0xEDB88320`,
//! initial value and final XOR `0xFFFFFFFF`) — the checksum guarding every
//! log and snapshot frame. The build environment vendors no third-party
//! crates, so the 256-entry table is built at compile time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"qhorn"), crc32(b"qhorn"));
        assert_ne!(crc32(b"qhorn"), crc32(b"qhorm"));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let c0 = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), c0, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
