//! The segmented append-only log and its snapshot/compaction/recovery
//! machinery.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/
//!   seg-000001.qlog      sealed segment (immutable once rotated)
//!   seg-000002.qlog      …
//!   seg-000003.qlog      active segment (appends go here)
//!   snapshot.qsnap       latest full snapshot (atomically renamed into place)
//! ```
//!
//! Every file is a sequence of **frames**:
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────────────┐
//! │ len: u32 LE│ crc: u32 LE│ payload (len bytes, JSON) │
//! └────────────┴────────────┴──────────────────────────┘
//! ```
//!
//! `crc` is CRC-32 (IEEE) of the payload. A short read, an oversized
//! length, a checksum mismatch, or unparseable JSON all mark a **torn
//! tail**: recovery truncates the segment at the last valid frame and
//! ignores (and removes) any later segments — exactly the half-written
//! state a crash mid-`write` can leave behind.

use crate::crc::crc32;
use crate::record::{LogRecord, PersistedSession, Replayer, SnapshotEntry};
use crate::{FsyncPolicy, StoreConfig, StoreError, StoreObserver, StoreOp, StoreStats};
use qhorn_json::{FromJson, Json, ToJson};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Largest accepted frame payload; a corrupt length field cannot make
/// recovery attempt a multi-gigabyte allocation.
const MAX_RECORD_BYTES: u32 = 1 << 24;

const SNAPSHOT_FILE: &str = "snapshot.qsnap";
const SNAPSHOT_TMP: &str = "snapshot.qsnap.tmp";

/// What [`SessionStore::open`] rebuilt from disk.
#[derive(Clone, Debug, Default)]
pub struct RecoveredState {
    /// Live (non-closed) sessions, in id order.
    pub sessions: Vec<PersistedSession>,
    /// Registered (and not since dropped) uploaded datasets, in name
    /// order — the service re-registers these with its catalog so
    /// recovered sessions over uploaded data can rebuild their stores.
    pub datasets: Vec<qhorn_relation::DatasetDef>,
    /// Highest session id ever logged (live or closed); resume id
    /// assignment above this.
    pub max_session_id: u64,
}

/// The embedded durable store: one shared segmented log plus a snapshot
/// file, guarding one service's sessions.
///
/// Not internally synchronized — the service wraps it in a `Mutex`.
/// Appends are a single `write(2)` of a whole frame, so a crash can only
/// tear the final frame, never interleave two.
pub struct SessionStore {
    dir: PathBuf,
    fsync: FsyncPolicy,
    segment_max_bytes: u64,
    active: File,
    active_index: u64,
    active_len: u64,
    /// Sealed (rotated-out) segments: `(index, bytes)`.
    sealed: Vec<(u64, u64)>,
    /// Next record sequence number to assign.
    next_seq: u64,
    /// Appends since the last fsync (for [`FsyncPolicy::EveryN`]).
    unsynced: u32,
    records_appended: u64,
    bytes_appended: u64,
    compactions: u64,
    last_compaction_seq: u64,
    recovered_sessions: u64,
    torn_truncations: u64,
    snapshot_sessions: u64,
    observer: Option<Box<dyn StoreObserver>>,
    /// Per-session secondary index: for each session id, the
    /// `(segment index, frame start offset)` of every log frame that
    /// belongs to it, in append (= sequence) order. Maintained on
    /// [`SessionStore::append`], rebuilt during [`SessionStore::open`]'s
    /// recovery scan, and pruned when compaction deletes segments —
    /// so [`SessionStore::load_session`] reads only one session's
    /// frames instead of replaying the whole log. A `SessionClosed`
    /// record collapses its id's entry to just the closing frame
    /// (earlier frames can no longer change the outcome), keeping the
    /// index bounded for long-gone sessions.
    session_index: BTreeMap<u64, Vec<(u64, u64)>>,
}

/// Records `frame` (spanning `[start, start+len)` of segment `segment`)
/// in the per-session index, if it belongs to a session.
fn index_record(
    index: &mut BTreeMap<u64, Vec<(u64, u64)>>,
    rec: &LogRecord,
    segment: u64,
    start: u64,
) {
    let Some(id) = rec.session_id() else { return };
    let slots = index.entry(id).or_default();
    if matches!(rec, LogRecord::SessionClosed { .. }) {
        // Replaying the close alone (over any snapshot state) yields
        // "no such session", same as replaying the full history.
        slots.clear();
    }
    slots.push((segment, start));
}

impl SessionStore {
    /// Opens (or creates) the store at `config.dir`, running recovery:
    /// read the snapshot, scan the segments, truncate any torn tail, and
    /// rebuild every live session.
    ///
    /// # Errors
    /// I/O failures only — corrupt data degrades to truncation, never to
    /// an error.
    pub fn open(config: &StoreConfig) -> Result<(SessionStore, RecoveredState), StoreError> {
        fs::create_dir_all(&config.dir)?;
        let mut torn_truncations = 0u64;

        let (snapshot_entries, snapshot_torn) = read_snapshot(&config.dir.join(SNAPSHOT_FILE))?;
        if snapshot_torn {
            torn_truncations += 1;
        }
        let snapshot_sessions = snapshot_entries.len() as u64;
        let mut max_seq = snapshot_entries
            .iter()
            .map(|e| e.through_seq)
            .max()
            .unwrap_or(0);
        let mut replayer = Replayer::new();
        replayer.seed(snapshot_entries);

        let mut segments = list_segments(&config.dir)?;
        let mut scanned: Vec<(u64, u64)> = Vec::new(); // (index, valid bytes)
        let mut stop_at: Option<usize> = None;
        let mut session_index: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
        for (i, &(index, ref path)) in segments.iter().enumerate() {
            let (frames, torn_scan) = scan_frames(&fs::read(path)?);
            let mut valid_len = 0u64;
            let mut torn = torn_scan;
            for (end, payload) in frames {
                match LogRecord::from_payload(&payload) {
                    Ok((seq, rec)) => {
                        max_seq = max_seq.max(seq);
                        index_record(&mut session_index, &rec, index, valid_len);
                        replayer.apply(seq, rec);
                        valid_len = end;
                    }
                    Err(_) => {
                        torn = true;
                        break;
                    }
                }
            }
            if torn {
                torn_truncations += 1;
                truncate_file(path, valid_len)?;
                scanned.push((index, valid_len));
                // Later segments postdate a torn tail; a crash cannot
                // produce that, so treat them as garbage.
                for (_, later) in &segments[i + 1..] {
                    let _ = fs::remove_file(later);
                }
                stop_at = Some(i + 1);
                break;
            }
            scanned.push((index, valid_len));
        }
        if let Some(n) = stop_at {
            segments.truncate(n);
        }

        // Reuse the last segment while it has room; otherwise start a new
        // one so sealed segments stay immutable.
        let (active_index, active_len, sealed) = match scanned.split_last() {
            Some((&(last_index, last_len), rest)) if last_len < config.segment_max_bytes => {
                (last_index, last_len, rest.to_vec())
            }
            Some((&(last_index, _), _)) => (last_index + 1, 0, scanned.clone()),
            None => (1, 0, Vec::new()),
        };
        let active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&config.dir, active_index))?;

        let max_session_id = replayer.max_id();
        let datasets = replayer.take_datasets();
        let sessions = replayer.finish();
        let store = SessionStore {
            dir: config.dir.clone(),
            fsync: config.fsync,
            segment_max_bytes: config.segment_max_bytes,
            active,
            active_index,
            active_len,
            sealed,
            next_seq: max_seq + 1,
            unsynced: 0,
            records_appended: 0,
            bytes_appended: 0,
            compactions: 0,
            last_compaction_seq: 0,
            recovered_sessions: sessions.len() as u64,
            torn_truncations,
            snapshot_sessions,
            observer: None,
            session_index,
        };
        Ok((
            store,
            RecoveredState {
                sessions,
                datasets,
                max_session_id,
            },
        ))
    }

    /// Appends one record, returning its assigned sequence number. The
    /// frame is written with a single `write`, then synced per the
    /// configured [`FsyncPolicy`].
    ///
    /// # Errors
    /// I/O failures; oversized records.
    pub fn append(&mut self, rec: &LogRecord) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        let frame = frame(&rec.to_payload(seq))?;
        let write_started = Instant::now();
        if self.active_len > 0 && self.active_len + frame.len() as u64 > self.segment_max_bytes {
            self.rotate()?;
        }
        let (frame_segment, frame_start) = (self.active_index, self.active_len);
        self.active.write_all(&frame)?;
        // Index only after the write succeeds — a failed append must not
        // leave the index pointing at bytes that never reached the file.
        index_record(&mut self.session_index, rec, frame_segment, frame_start);
        let write_elapsed = write_started.elapsed();
        self.active_len += frame.len() as u64;
        self.next_seq += 1;
        self.records_appended += 1;
        self.bytes_appended += frame.len() as u64;
        let mut fsync_elapsed = None;
        match self.fsync {
            FsyncPolicy::Always => {
                let started = Instant::now();
                self.active.sync_data()?;
                fsync_elapsed = Some(started.elapsed());
            }
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    let started = Instant::now();
                    self.active.sync_data()?;
                    fsync_elapsed = Some(started.elapsed());
                    self.unsynced = 0;
                }
            }
            FsyncPolicy::Never => {}
        }
        if let Some(obs) = &self.observer {
            obs.observe(StoreOp::Append, write_elapsed, frame.len() as u64);
            if let Some(d) = fsync_elapsed {
                obs.observe(StoreOp::Fsync, d, 0);
            }
        }
        Ok(seq)
    }

    /// Installs an [`StoreObserver`] notified after each timed operation
    /// (replacing any previous one). The service layer uses this to feed
    /// store spans into request traces.
    pub fn set_observer(&mut self, observer: Box<dyn StoreObserver>) {
        self.observer = Some(observer);
    }

    /// Seals the active segment and starts a new one, returning the new
    /// active segment's index — the **compaction boundary**. Compaction
    /// calls this first so every record that predates the rotation lands
    /// in a segment the snapshot will cover; only segments *below* the
    /// boundary may be deleted afterwards (appends racing with the
    /// capture window can auto-rotate and seal newer segments, which the
    /// snapshot does not cover).
    ///
    /// # Errors
    /// I/O failures.
    pub fn rotate(&mut self) -> Result<u64, StoreError> {
        self.active.sync_data()?;
        self.unsynced = 0;
        self.sealed.push((self.active_index, self.active_len));
        self.active_index += 1;
        self.active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, self.active_index))?;
        self.active_len = 0;
        Ok(self.active_index)
    }

    /// Forces everything appended so far to disk regardless of policy.
    ///
    /// # Errors
    /// I/O failures.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.active.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// The sequence number of the last appended record (0 when the log
    /// has never held one).
    #[must_use]
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Total framed bytes appended over this store's lifetime. Sampling
    /// this around an [`append`](Self::append) yields the exact byte cost
    /// of that record — the service's per-session accounting does so.
    #[must_use]
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// Total bytes across all live segments — the `sweep` compaction
    /// trigger compares this against `compact_threshold_bytes`.
    #[must_use]
    pub fn live_log_bytes(&self) -> u64 {
        self.sealed.iter().map(|&(_, len)| len).sum::<u64>() + self.active_len
    }

    /// Counters for the `Stats` protocol reply.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            records_appended: self.records_appended,
            bytes_appended: self.bytes_appended,
            segments: self.sealed.len() as u64 + 1,
            live_log_bytes: self.live_log_bytes(),
            compactions: self.compactions,
            last_compaction_seq: self.last_compaction_seq,
            recovered_sessions: self.recovered_sessions,
            torn_truncations: self.torn_truncations,
            snapshot_sessions: self.snapshot_sessions,
        }
    }

    /// Writes a full snapshot and truncates the log: `captured` holds the
    /// caller's freshly captured session states (each with the sequence
    /// number its capture reflects); any live session on disk that the
    /// caller did *not* capture (e.g. one dropped from every in-memory
    /// cache) is carried forward from the current disk state, so
    /// compaction never loses a session. Sealed segments **below
    /// `boundary`** — now wholly covered — are deleted; segments sealed
    /// after the boundary rotation (an append racing with the capture
    /// window can auto-rotate) hold records the captures may not reflect
    /// and survive until the next compaction.
    ///
    /// Call [`SessionStore::rotate`] before capturing states and pass its
    /// returned boundary here: that guarantees every record in a deleted
    /// segment predates every capture.
    ///
    /// # Errors
    /// I/O failures (the old snapshot and log stay intact on error).
    pub fn write_snapshot(
        &mut self,
        captured: &[SnapshotEntry],
        boundary: u64,
    ) -> Result<(), StoreError> {
        let compact_started = Instant::now();
        // Everything currently on disk reflects records up to last_seq.
        let mut disk = self.replay_disk()?;
        let datasets = disk.take_datasets();
        let through = self.last_seq();
        let mut merged: BTreeMap<u64, SnapshotEntry> = disk
            .finish_entries()
            .into_iter()
            .map(|mut e| {
                e.through_seq = through;
                (e.session.id, e)
            })
            .collect();
        for e in captured {
            merged.insert(e.session.id, e.clone());
        }

        // Write-tmp → fsync → rename: the snapshot file is always either
        // the complete old one or the complete new one.
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let mut snapshot_bytes = 0u64;
        {
            let mut f = File::create(&tmp)?;
            let header = Json::object([
                ("kind", Json::Str("snapshot_header".into())),
                ("version", 1u64.to_json()),
                ("sessions", (merged.len() as u64).to_json()),
            ]);
            let header_frame = frame(header.to_string().as_bytes())?;
            snapshot_bytes += header_frame.len() as u64;
            f.write_all(&header_frame)?;
            for entry in merged.values() {
                let entry_frame = frame(entry.to_json().to_string().as_bytes())?;
                snapshot_bytes += entry_frame.len() as u64;
                f.write_all(&entry_frame)?;
            }
            f.sync_data()?;
        }
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        // Make the rename durable; best-effort (not all platforms support
        // fsync on directories).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }

        // Dataset registrations live only in the log (session snapshots do
        // not carry them), so re-append the current registrations into the
        // post-boundary log *before* deleting the segments that held the
        // originals — a crash between the two steps must not lose any.
        // Replay is last-wins, so the duplicates a crash can leave behind
        // are harmless.
        for def in &datasets {
            self.append(&LogRecord::DatasetRegistered { def: def.clone() })?;
        }
        if !datasets.is_empty() {
            // The originals may have been durable for days; the
            // re-appends must hit disk before the files holding the
            // originals are unlinked, regardless of fsync policy —
            // otherwise power loss in the window loses both copies.
            self.sync()?;
        }

        for &(index, _) in self.sealed.iter().filter(|&&(index, _)| index < boundary) {
            let _ = fs::remove_file(segment_path(&self.dir, index));
        }
        self.sealed.retain(|&(index, _)| index >= boundary);
        // Deleted segments' frames are now covered by the snapshot; a
        // session left with no frames is served from the snapshot alone
        // (or, for closed sessions, correctly not at all).
        self.session_index.retain(|_, slots| {
            slots.retain(|&(segment, _)| segment >= boundary);
            !slots.is_empty()
        });
        self.compactions += 1;
        self.last_compaction_seq = through;
        self.snapshot_sessions = merged.len() as u64;
        let sessions = merged.len() as u64;
        self.append(&LogRecord::SnapshotWritten {
            through_seq: through,
            sessions,
        })?;
        if let Some(obs) = &self.observer {
            obs.observe(
                StoreOp::Compaction,
                compact_started.elapsed(),
                snapshot_bytes,
            );
        }
        Ok(())
    }

    /// Rebuilds one session's state from disk, for restore paths whose
    /// in-memory caches have dropped it. Returns `None` for unknown or
    /// closed ids.
    ///
    /// Uses the per-session secondary index: only the snapshot entry for
    /// `id` (if any) plus that session's own log frames are read, so
    /// restore cost scales with the session's history, not with every
    /// other session's log volume. [`load_session_unindexed`]
    /// (Self::load_session_unindexed) is the reference full-scan path;
    /// the differential suite pins the two equal.
    ///
    /// # Errors
    /// I/O failures; [`StoreError::Corrupt`] when an indexed frame fails
    /// its checksum or does not decode (appends only ever frame decodable
    /// payloads, so that means in-place file corruption).
    pub fn load_session(&self, id: u64) -> Result<Option<PersistedSession>, StoreError> {
        let (entries, _) = read_snapshot(&self.dir.join(SNAPSHOT_FILE))?;
        let mut replayer = Replayer::new();
        replayer.seed(entries.into_iter().filter(|e| e.session.id == id).collect());
        let mut records: Vec<(u64, LogRecord)> = Vec::new();
        if let Some(slots) = self.session_index.get(&id) {
            // Group by segment so each file is opened once; offsets
            // within a segment are already in append (sequence) order.
            let mut by_segment: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            for &(segment, start) in slots {
                by_segment.entry(segment).or_default().push(start);
            }
            for (segment, starts) in by_segment {
                let path = segment_path(&self.dir, segment);
                let mut file = File::open(&path)?;
                for start in starts {
                    let payload = read_frame_at(&mut file, start).map_err(|e| {
                        StoreError::Corrupt(format!(
                            "indexed frame at byte {start} of {}: {e}",
                            path.display()
                        ))
                    })?;
                    let (seq, rec) = LogRecord::from_payload(&payload).map_err(|e| {
                        StoreError::Corrupt(format!(
                            "undecodable indexed record at byte {start} of {}: {e}",
                            path.display()
                        ))
                    })?;
                    records.push((seq, rec));
                }
            }
        }
        // The snapshot's `through_seq` gate skips any frame it already
        // covers, so replaying snapshot + indexed frames is exact.
        records.sort_by_key(|&(seq, _)| seq);
        for (seq, rec) in records {
            replayer.apply(seq, rec);
        }
        Ok(replayer.finish().into_iter().find(|s| s.id == id))
    }

    /// The pre-index reference restore path: replays the snapshot and
    /// **every** frame of **every** segment, then picks out `id`. Kept
    /// for the differential test and the load harness's restore-scaling
    /// bench; prefer [`load_session`](Self::load_session).
    ///
    /// # Errors
    /// I/O failures; [`StoreError::Corrupt`] on in-place corruption.
    pub fn load_session_unindexed(&self, id: u64) -> Result<Option<PersistedSession>, StoreError> {
        let replayer = self.replay_disk()?;
        Ok(replayer.finish().into_iter().find(|s| s.id == id))
    }

    /// Replays the full current disk state (snapshot + every segment)
    /// into a fresh [`Replayer`].
    ///
    /// An incomplete or checksum-failing **physical tail** is skipped, as
    /// at recovery — a crash can legitimately leave one. A CRC-valid
    /// frame whose payload does not decode is a different animal: appends
    /// only ever frame decodable payloads, so one of these means the file
    /// was corrupted in place, and silently dropping every record behind
    /// it (as this method once did) would serve readers a truncated
    /// history as if it were complete. Surfaced as
    /// [`StoreError::Corrupt`] instead.
    fn replay_disk(&self) -> Result<Replayer, StoreError> {
        let (entries, _) = read_snapshot(&self.dir.join(SNAPSHOT_FILE))?;
        let mut replayer = Replayer::new();
        replayer.seed(entries);
        let mut indices: Vec<u64> = self.sealed.iter().map(|&(i, _)| i).collect();
        indices.push(self.active_index);
        for index in indices {
            let path = segment_path(&self.dir, index);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(_) => continue,
            };
            let (frames, _) = scan_frames(&bytes);
            for (end, payload) in frames {
                let (seq, rec) = LogRecord::from_payload(&payload).map_err(|e| {
                    StoreError::Corrupt(format!(
                        "undecodable record ending at byte {end} of {}: {e}",
                        path.display()
                    ))
                })?;
                replayer.apply(seq, rec);
            }
        }
        Ok(replayer)
    }
}

/// Builds one frame: `len (u32 LE) ‖ crc32(payload) (u32 LE) ‖ payload`.
fn frame(payload: &[u8]) -> Result<Vec<u8>, StoreError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_RECORD_BYTES)
        .ok_or_else(|| StoreError::Corrupt(format!("record too large: {} bytes", payload.len())))?;
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Reads and checksum-verifies the single frame starting at byte
/// `start` of `file`, returning its payload. Errors (I/O, oversized
/// length, CRC mismatch) are reported as strings for the caller to wrap.
fn read_frame_at(file: &mut File, start: u64) -> Result<Vec<u8>, String> {
    file.seek(SeekFrom::Start(start))
        .map_err(|e| e.to_string())?;
    let mut header = [0u8; 8];
    file.read_exact(&mut header).map_err(|e| e.to_string())?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if len > MAX_RECORD_BYTES {
        return Err(format!("oversized frame length {len}"));
    }
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    let mut payload = vec![0u8; len as usize];
    file.read_exact(&mut payload).map_err(|e| e.to_string())?;
    if crc32(&payload) != crc {
        return Err("checksum mismatch".to_string());
    }
    Ok(payload)
}

/// Parses frames from raw bytes. Returns `(frames, torn)` where each
/// frame is `(end offset, payload)`; `torn` is set when trailing bytes
/// did not form a complete valid frame.
fn scan_frames(bytes: &[u8]) -> (Vec<(u64, Vec<u8>)>, bool) {
    let mut frames = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        if bytes.len() - at < 8 {
            return (frames, true);
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_BYTES as usize || bytes.len() - at - 8 < len {
            return (frames, true);
        }
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        let payload = &bytes[at + 8..at + 8 + len];
        if crc32(payload) != crc {
            return (frames, true);
        }
        at += 8 + len;
        frames.push((at as u64, payload.to_vec()));
    }
    (frames, false)
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:06}.qlog"))
}

/// Segment files in `dir`, sorted by index.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(index) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".qlog"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            segments.push((index, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|&(index, _)| index);
    Ok(segments)
}

fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    f.sync_data()?;
    Ok(())
}

/// Reads the snapshot file: `(entries, torn)`. A missing file is an empty
/// snapshot; a torn or corrupt one degrades to its valid prefix (the
/// atomic-rename protocol makes that unreachable short of media errors).
fn read_snapshot(path: &Path) -> Result<(Vec<SnapshotEntry>, bool), StoreError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), false)),
        Err(e) => return Err(e.into()),
    };
    let (frames, mut torn) = scan_frames(&bytes);
    let mut entries = Vec::new();
    for (i, (_, payload)) in frames.iter().enumerate() {
        let parsed = std::str::from_utf8(payload)
            .ok()
            .and_then(|t| Json::parse(t).ok());
        let Some(j) = parsed else {
            torn = true;
            break;
        };
        if i == 0 {
            // Header frame; validated loosely (version 1 only).
            let version = j.get("version").and_then(Json::as_u64).unwrap_or(0);
            if j.get("kind").and_then(Json::as_str) != Some("snapshot_header") || version != 1 {
                torn = true;
                break;
            }
            continue;
        }
        match SnapshotEntry::from_json(&j) {
            Ok(e) => entries.push(e),
            Err(_) => {
                torn = true;
                break;
            }
        }
    }
    Ok((entries, torn))
}
