//! Flat and nested relation schemas (Defs. 2.1–2.3).
//!
//! A nested relation has at least one domain that is a powerset of another
//! relation (Def. 2.2). The paper analyzes single-level nesting: the
//! embedded relation is flat (Def. 2.3). [`NestedSchema`] encodes that
//! restriction by construction — the embedded part *is* a [`FlatSchema`].

use crate::value::{AttrType, Value};
use std::fmt;

/// A named, typed attribute.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Attr {
    /// Attribute name (unique within its schema).
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

impl Attr {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: &str, ty: AttrType) -> Self {
        Attr {
            name: name.to_string(),
            ty,
        }
    }
}

/// Schema errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SchemaError {
    /// Two attributes share a name.
    DuplicateAttr(String),
    /// An attribute name was not found.
    NoSuchAttr(String),
    /// A value's type does not match the attribute's declared type.
    TypeMismatch {
        /// The attribute.
        attr: String,
        /// Declared type.
        expected: AttrType,
        /// Provided value's type.
        got: AttrType,
    },
    /// A tuple has the wrong number of values.
    WrongArity {
        /// Declared attribute count.
        expected: usize,
        /// Provided value count.
        got: usize,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateAttr(a) => write!(f, "duplicate attribute {a:?}"),
            SchemaError::NoSuchAttr(a) => write!(f, "no attribute named {a:?}"),
            SchemaError::TypeMismatch {
                attr,
                expected,
                got,
            } => {
                write!(f, "attribute {attr:?} expects {expected}, got {got}")
            }
            SchemaError::WrongArity { expected, got } => {
                write!(
                    f,
                    "tuple has {got} values but the schema declares {expected} attributes"
                )
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// A flat relation schema (Def. 2.3): named, typed attributes, none of
/// which is set-valued.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FlatSchema {
    attrs: Vec<Attr>,
}

impl FlatSchema {
    /// Builds a schema, rejecting duplicate attribute names.
    pub fn new<I: IntoIterator<Item = Attr>>(attrs: I) -> Result<Self, SchemaError> {
        let attrs: Vec<Attr> = attrs.into_iter().collect();
        for (i, a) in attrs.iter().enumerate() {
            if attrs.iter().skip(i + 1).any(|b| b.name == a.name) {
                return Err(SchemaError::DuplicateAttr(a.name.clone()));
            }
        }
        Ok(FlatSchema { attrs })
    }

    /// The attributes, in declaration order.
    #[must_use]
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Index of an attribute by name.
    pub fn index_of(&self, name: &str) -> Result<usize, SchemaError> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| SchemaError::NoSuchAttr(name.to_string()))
    }

    /// Type of an attribute by name.
    pub fn type_of(&self, name: &str) -> Result<AttrType, SchemaError> {
        Ok(self.attrs[self.index_of(name)?].ty)
    }

    /// Validates one tuple's values against the schema.
    pub fn check_tuple(&self, values: &[Value]) -> Result<(), SchemaError> {
        if values.len() != self.attrs.len() {
            return Err(SchemaError::WrongArity {
                expected: self.attrs.len(),
                got: values.len(),
            });
        }
        for (a, v) in self.attrs.iter().zip(values) {
            if v.attr_type() != a.ty {
                return Err(SchemaError::TypeMismatch {
                    attr: a.name.clone(),
                    expected: a.ty,
                    got: v.attr_type(),
                });
            }
        }
        Ok(())
    }
}

/// A nested relation schema with single-level nesting (Def. 2.2 +
/// the paper's restriction): object-level attributes plus one embedded
/// flat relation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NestedSchema {
    /// Name of the nested relation (e.g. `Box`).
    pub name: String,
    /// Object-level attributes (e.g. `name`).
    pub object_attrs: FlatSchema,
    /// Name of the embedded relation (e.g. `Chocolate`).
    pub embedded_name: String,
    /// Schema of the embedded flat relation.
    pub embedded: FlatSchema,
}

impl NestedSchema {
    /// Convenience constructor.
    #[must_use]
    pub fn new(
        name: &str,
        object_attrs: FlatSchema,
        embedded_name: &str,
        embedded: FlatSchema,
    ) -> Self {
        NestedSchema {
            name: name.to_string(),
            object_attrs,
            embedded_name: embedded_name.to_string(),
            embedded,
        }
    }
}

impl fmt::Display for NestedSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let obj: Vec<String> = self
            .object_attrs
            .attrs()
            .iter()
            .map(|a| a.name.clone())
            .collect();
        let emb: Vec<String> = self
            .embedded
            .attrs()
            .iter()
            .map(|a| a.name.clone())
            .collect();
        write!(
            f,
            "{}({}, {}({}))",
            self.name,
            obj.join(", "),
            self.embedded_name,
            emb.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chocolate() -> FlatSchema {
        FlatSchema::new([
            Attr::new("isDark", AttrType::Bool),
            Attr::new("hasFilling", AttrType::Bool),
            Attr::new("origin", AttrType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_attrs_rejected() {
        let err = FlatSchema::new([
            Attr::new("a", AttrType::Bool),
            Attr::new("a", AttrType::Int),
        ])
        .unwrap_err();
        assert_eq!(err, SchemaError::DuplicateAttr("a".into()));
    }

    #[test]
    fn lookup_by_name() {
        let s = chocolate();
        assert_eq!(s.index_of("origin").unwrap(), 2);
        assert_eq!(s.type_of("isDark").unwrap(), AttrType::Bool);
        assert!(matches!(
            s.index_of("nope"),
            Err(SchemaError::NoSuchAttr(_))
        ));
    }

    #[test]
    fn tuple_validation() {
        let s = chocolate();
        assert!(s
            .check_tuple(&[Value::Bool(true), Value::Bool(false), Value::str("Belgium")])
            .is_ok());
        assert!(matches!(
            s.check_tuple(&[Value::Bool(true), Value::Bool(false)]),
            Err(SchemaError::WrongArity {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            s.check_tuple(&[Value::Int(1), Value::Bool(false), Value::str("x")]),
            Err(SchemaError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn nested_schema_display_matches_paper_style() {
        let s = NestedSchema::new(
            "Box",
            FlatSchema::new([Attr::new("name", AttrType::Str)]).unwrap(),
            "Chocolate",
            chocolate(),
        );
        assert_eq!(
            s.to_string(),
            "Box(name, Chocolate(isDark, hasFilling, origin))"
        );
    }
}
