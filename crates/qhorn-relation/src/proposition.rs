//! Propositions — the Boolean atoms users write over embedded-relation
//! attributes (§2: `p1: c.isDark`, `p3: c.origin = Madagascar`).

use crate::schema::{FlatSchema, SchemaError};
use crate::value::{AttrType, Value};
use std::fmt;

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Cmp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<` (integers only)
    Lt,
    /// `≤` (integers only)
    Le,
    /// `>` (integers only)
    Gt,
    /// `≥` (integers only)
    Ge,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::Eq => "=",
            Cmp::Ne => "≠",
            Cmp::Lt => "<",
            Cmp::Le => "≤",
            Cmp::Gt => ">",
            Cmp::Ge => "≥",
        };
        f.write_str(s)
    }
}

/// Proposition errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PropError {
    /// Schema lookup or type failure.
    Schema(SchemaError),
    /// An ordering comparison on a non-integer attribute.
    OrderingOnNonInt {
        /// The proposition name.
        prop: String,
        /// The attribute's type.
        ty: AttrType,
    },
}

impl fmt::Display for PropError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropError::Schema(e) => write!(f, "{e}"),
            PropError::OrderingOnNonInt { prop, ty } => {
                write!(f, "proposition {prop:?} orders a {ty} attribute")
            }
        }
    }
}

impl std::error::Error for PropError {}

impl From<SchemaError> for PropError {
    fn from(e: SchemaError) -> Self {
        PropError::Schema(e)
    }
}

/// A proposition `attr cmp constant` over the embedded relation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Proposition {
    /// Display name (`p1`, `isDark`, …).
    pub name: String,
    /// Attribute the proposition tests.
    pub attr: String,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand constant.
    pub rhs: Value,
}

impl Proposition {
    /// `attr = constant`.
    #[must_use]
    pub fn eq(name: &str, attr: &str, rhs: Value) -> Self {
        Proposition {
            name: name.to_string(),
            attr: attr.to_string(),
            cmp: Cmp::Eq,
            rhs,
        }
    }

    /// `attr` is a true Boolean (`p1: c.isDark`).
    #[must_use]
    pub fn is_true(name: &str, attr: &str) -> Self {
        Proposition::eq(name, attr, Value::Bool(true))
    }

    /// General constructor.
    #[must_use]
    pub fn new(name: &str, attr: &str, cmp: Cmp, rhs: Value) -> Self {
        Proposition {
            name: name.to_string(),
            attr: attr.to_string(),
            cmp,
            rhs,
        }
    }

    /// Validates the proposition against a schema: the attribute exists,
    /// the constant's type matches, and ordering operators apply only to
    /// integers.
    pub fn validate(&self, schema: &FlatSchema) -> Result<(), PropError> {
        let ty = schema.type_of(&self.attr)?;
        if ty != self.rhs.attr_type() {
            return Err(SchemaError::TypeMismatch {
                attr: self.attr.clone(),
                expected: ty,
                got: self.rhs.attr_type(),
            }
            .into());
        }
        if matches!(self.cmp, Cmp::Lt | Cmp::Le | Cmp::Gt | Cmp::Ge) && ty != AttrType::Int {
            return Err(PropError::OrderingOnNonInt {
                prop: self.name.clone(),
                ty,
            });
        }
        Ok(())
    }

    /// Evaluates the proposition on a tuple.
    pub fn eval(
        &self,
        tuple: &crate::relation::DataTuple,
        schema: &FlatSchema,
    ) -> Result<bool, PropError> {
        let v = tuple.get_named(schema, &self.attr)?;
        Ok(match (self.cmp, v, &self.rhs) {
            (Cmp::Eq, a, b) => a == b,
            (Cmp::Ne, a, b) => a != b,
            (Cmp::Lt, Value::Int(a), Value::Int(b)) => a < b,
            (Cmp::Le, Value::Int(a), Value::Int(b)) => a <= b,
            (Cmp::Gt, Value::Int(a), Value::Int(b)) => a > b,
            (Cmp::Ge, Value::Int(a), Value::Int(b)) => a >= b,
            _ => {
                return Err(PropError::OrderingOnNonInt {
                    prop: self.name.clone(),
                    ty: v.attr_type(),
                })
            }
        })
    }
}

impl fmt::Display for Proposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} {} {}", self.name, self.attr, self.cmp, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::DataTuple;
    use crate::schema::{Attr, FlatSchema};

    fn schema() -> FlatSchema {
        FlatSchema::new([
            Attr::new("isDark", AttrType::Bool),
            Attr::new("origin", AttrType::Str),
            Attr::new("cocoa", AttrType::Int),
        ])
        .unwrap()
    }

    fn tuple() -> DataTuple {
        DataTuple::new([Value::Bool(true), Value::str("Madagascar"), Value::Int(72)])
    }

    #[test]
    fn paper_propositions_evaluate() {
        let s = schema();
        let t = tuple();
        assert!(Proposition::is_true("p1", "isDark").eval(&t, &s).unwrap());
        assert!(Proposition::eq("p3", "origin", Value::str("Madagascar"))
            .eval(&t, &s)
            .unwrap());
        assert!(!Proposition::eq("pb", "origin", Value::str("Belgium"))
            .eval(&t, &s)
            .unwrap());
    }

    #[test]
    fn integer_orderings() {
        let s = schema();
        let t = tuple();
        assert!(Proposition::new("hi", "cocoa", Cmp::Ge, Value::Int(70))
            .eval(&t, &s)
            .unwrap());
        assert!(!Proposition::new("lo", "cocoa", Cmp::Lt, Value::Int(50))
            .eval(&t, &s)
            .unwrap());
        assert!(Proposition::new("ne", "cocoa", Cmp::Ne, Value::Int(50))
            .eval(&t, &s)
            .unwrap());
    }

    #[test]
    fn validation_catches_bad_props() {
        let s = schema();
        assert!(Proposition::is_true("p", "isDark").validate(&s).is_ok());
        assert!(Proposition::is_true("p", "nope").validate(&s).is_err());
        assert!(Proposition::eq("p", "isDark", Value::Int(1))
            .validate(&s)
            .is_err());
        assert!(matches!(
            Proposition::new("p", "origin", Cmp::Lt, Value::str("A")).validate(&s),
            Err(PropError::OrderingOnNonInt { .. })
        ));
    }

    #[test]
    fn eval_ordering_on_string_errors() {
        let s = schema();
        let t = tuple();
        assert!(Proposition::new("p", "origin", Cmp::Lt, Value::str("Z"))
            .eval(&t, &s)
            .is_err());
    }

    #[test]
    fn display() {
        let p = Proposition::eq("p3", "origin", Value::str("Madagascar"));
        assert_eq!(p.to_string(), "p3: origin = \"Madagascar\"");
    }
}
