//! JSON wire formats for the data-domain types, so nested relations,
//! propositions, and synthesis hints can travel over the service protocol
//! (user-uploaded datasets) and rest in the durable store.
//!
//! Shapes are chosen for hand-writability — a user uploads a dataset with
//! `curl`, so the JSON mirrors how one would describe the data aloud:
//!
//! ```text
//! schema:      {"name":"Box","attrs":[{"name":"name","type":"string"}],
//!               "embedded_name":"Chocolate",
//!               "embedded":[{"name":"isDark","type":"bool"},...]}
//! proposition: {"name":"p1","attr":"isDark","cmp":"=","value":true}
//! object:      {"attrs":["Global Ground"],"tuples":[[true,false,"Belgium"],...]}
//! hints:       {"origin":["Belgium","Sweden"]}
//! ```
//!
//! Scalar [`Value`]s serialize as plain JSON scalars (the type is
//! recoverable from the JSON kind), so tuples are bare arrays. `FromJson`
//! validates structure only; semantic validation (tuples against schemas,
//! propositions against attributes) stays with the constructors —
//! [`NestedRelation::from_json`] runs it because objects cannot even be
//! represented unchecked.

use crate::proposition::{Cmp, Proposition};
use crate::relation::{DataTuple, NestedObject, NestedRelation};
use crate::schema::{Attr, FlatSchema, NestedSchema};
use crate::synthesize::DomainHints;
use crate::value::{AttrType, Value};
use qhorn_json::{FromJson, Json, JsonError, ToJson};

impl ToJson for AttrType {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                AttrType::Bool => "bool",
                AttrType::Int => "int",
                AttrType::Str => "string",
            }
            .into(),
        )
    }
}

impl FromJson for AttrType {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_str() {
            Some("bool") => Ok(AttrType::Bool),
            Some("int") => Ok(AttrType::Int),
            Some("string") => Ok(AttrType::Str),
            Some(other) => Err(JsonError::msg(format!("unknown attribute type `{other}`"))),
            None => Err(JsonError::msg("attribute type must be a string")),
        }
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Json {
        match self {
            Value::Bool(b) => Json::Bool(*b),
            Value::Int(i) => Json::I64(*i),
            Value::Str(s) => Json::Str(s.clone()),
        }
    }
}

impl FromJson for Value {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j {
            Json::Bool(b) => Ok(Value::Bool(*b)),
            Json::Str(s) => Ok(Value::Str(s.clone())),
            _ => j
                .as_i64()
                .map(Value::Int)
                .ok_or_else(|| JsonError::msg("value must be a bool, integer, or string")),
        }
    }
}

impl ToJson for Attr {
    fn to_json(&self) -> Json {
        Json::object([("name", self.name.to_json()), ("type", self.ty.to_json())])
    }
}

impl FromJson for Attr {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Attr {
            name: String::from_json(j.field("name")?)?,
            ty: AttrType::from_json(j.field("type")?)?,
        })
    }
}

impl ToJson for FlatSchema {
    fn to_json(&self) -> Json {
        self.attrs().to_vec().to_json()
    }
}

impl FromJson for FlatSchema {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let attrs = Vec::<Attr>::from_json(j)?;
        FlatSchema::new(attrs).map_err(|e| JsonError::msg(e.to_string()))
    }
}

impl ToJson for NestedSchema {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", self.name.to_json()),
            ("attrs", self.object_attrs.to_json()),
            ("embedded_name", self.embedded_name.to_json()),
            ("embedded", self.embedded.to_json()),
        ])
    }
}

impl FromJson for NestedSchema {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(NestedSchema {
            name: String::from_json(j.field("name")?)?,
            object_attrs: FlatSchema::from_json(j.field("attrs")?)?,
            embedded_name: String::from_json(j.field("embedded_name")?)?,
            embedded: FlatSchema::from_json(j.field("embedded")?)?,
        })
    }
}

impl ToJson for Cmp {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Cmp::Eq => "=",
                Cmp::Ne => "!=",
                Cmp::Lt => "<",
                Cmp::Le => "<=",
                Cmp::Gt => ">",
                Cmp::Ge => ">=",
            }
            .into(),
        )
    }
}

impl FromJson for Cmp {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.as_str() {
            Some("=") => Ok(Cmp::Eq),
            Some("!=") => Ok(Cmp::Ne),
            Some("<") => Ok(Cmp::Lt),
            Some("<=") => Ok(Cmp::Le),
            Some(">") => Ok(Cmp::Gt),
            Some(">=") => Ok(Cmp::Ge),
            Some(other) => Err(JsonError::msg(format!("unknown comparison `{other}`"))),
            None => Err(JsonError::msg("comparison must be a string")),
        }
    }
}

impl ToJson for Proposition {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", self.name.to_json()),
            ("attr", self.attr.to_json()),
            ("cmp", self.cmp.to_json()),
            ("value", self.rhs.to_json()),
        ])
    }
}

impl FromJson for Proposition {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(Proposition {
            name: String::from_json(j.field("name")?)?,
            attr: String::from_json(j.field("attr")?)?,
            // Omitted `cmp` means equality — the overwhelmingly common
            // case for hand-written uploads (`isDark = true`).
            cmp: match j.get("cmp") {
                None => Cmp::Eq,
                Some(c) => Cmp::from_json(c)?,
            },
            rhs: Value::from_json(j.field("value")?)?,
        })
    }
}

impl ToJson for DataTuple {
    fn to_json(&self) -> Json {
        self.values().to_vec().to_json()
    }
}

impl FromJson for DataTuple {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(DataTuple::new(Vec::<Value>::from_json(j)?))
    }
}

impl ToJson for NestedObject {
    fn to_json(&self) -> Json {
        Json::object([
            ("attrs", self.attrs.to_json()),
            ("tuples", self.tuples.to_json()),
        ])
    }
}

impl FromJson for NestedObject {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        Ok(NestedObject {
            attrs: DataTuple::from_json(j.field("attrs")?)?,
            tuples: Vec::<DataTuple>::from_json(j.field("tuples")?)?,
        })
    }
}

impl ToJson for NestedRelation {
    fn to_json(&self) -> Json {
        Json::object([
            ("schema", self.schema.to_json()),
            ("objects", self.objects.to_json()),
        ])
    }
}

impl FromJson for NestedRelation {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let schema = NestedSchema::from_json(j.field("schema")?)?;
        let objects = Vec::<NestedObject>::from_json(j.field("objects")?)?;
        let mut rel = NestedRelation::new(schema);
        for o in objects {
            // Schema validation happens here: a type mismatch or arity
            // error in any tuple rejects the whole relation.
            rel.push(o).map_err(|e| JsonError::msg(e.to_string()))?;
        }
        Ok(rel)
    }
}

impl ToJson for DomainHints {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.entries()
                .map(|(attr, values)| (attr.to_string(), values.to_vec().to_json()))
                .collect(),
        )
    }
}

impl FromJson for DomainHints {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        let pairs = j
            .as_obj()
            .ok_or_else(|| JsonError::msg("hints must be an object of attr → value arrays"))?;
        let mut hints = DomainHints::none();
        for (attr, values) in pairs {
            hints = hints.with(attr, Vec::<Value>::from_json(values)?);
        }
        Ok(hints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{cellars, chocolates};
    use proptest::prelude::*;

    fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(v: &T) {
        let line = qhorn_json::to_string(v);
        assert!(!line.contains('\n'), "wire format is one line: {line}");
        let back: T = qhorn_json::from_str(&line).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn builtin_schemas_round_trip() {
        round_trip(&chocolates::schema());
        round_trip(&cellars::schema());
    }

    #[test]
    fn builtin_relations_round_trip() {
        round_trip(&chocolates::fig1_boxes());
        round_trip(&chocolates::assorted_boxes(12));
        round_trip(&cellars::inventory(8));
    }

    #[test]
    fn builtin_propositions_round_trip() {
        for p in chocolates::propositions() {
            round_trip(&p);
        }
        for p in cellars::propositions() {
            round_trip(&p);
        }
    }

    #[test]
    fn builtin_hints_round_trip() {
        for hints in [chocolates::hints(), cellars::hints(), DomainHints::none()] {
            let line = qhorn_json::to_string(&hints);
            let back: DomainHints = qhorn_json::from_str(&line).unwrap();
            assert_eq!(back, hints);
        }
    }

    #[test]
    fn omitted_cmp_defaults_to_equality() {
        let p: Proposition =
            qhorn_json::from_str(r#"{"name":"p1","attr":"isDark","value":true}"#).unwrap();
        assert_eq!(p, Proposition::is_true("p1", "isDark"));
    }

    #[test]
    fn malformed_inputs_are_rejected_with_reasons() {
        // Duplicate attribute names.
        let err = qhorn_json::from_str::<FlatSchema>(
            r#"[{"name":"a","type":"bool"},{"name":"a","type":"int"}]"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        // Unknown attribute type.
        assert!(qhorn_json::from_str::<FlatSchema>(r#"[{"name":"a","type":"float"}]"#).is_err());
        // Object tuple violating the embedded schema.
        let bad = r#"{
            "schema":{"name":"Box","attrs":[{"name":"name","type":"string"}],
                      "embedded_name":"C","embedded":[{"name":"isDark","type":"bool"}]},
            "objects":[{"attrs":["b1"],"tuples":[[7]]}]
        }"#;
        let err = qhorn_json::from_str::<NestedRelation>(bad).unwrap_err();
        assert!(err.to_string().contains("isDark"), "{err}");
        // Wrong object-level arity.
        let bad = r#"{
            "schema":{"name":"Box","attrs":[{"name":"name","type":"string"}],
                      "embedded_name":"C","embedded":[{"name":"isDark","type":"bool"}]},
            "objects":[{"attrs":[],"tuples":[]}]
        }"#;
        assert!(qhorn_json::from_str::<NestedRelation>(bad).is_err());
        // Null is not a value.
        assert!(qhorn_json::from_str::<Value>("null").is_err());
    }

    // -- property round trips ------------------------------------------------
    //
    // The vendored proptest stand-in has no `prop_flat_map`, so dependent
    // structures (tuples typed by a generated schema) are built from a
    // `u64` seed with a small deterministic stream instead.

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            any::<bool>().prop_map(Value::Bool),
            // The vendored range strategy mishandles negative bounds;
            // shift a non-negative draw instead.
            (0i64..8_000_000_000_000i64).prop_map(|v| Value::Int(v - 4_000_000_000_000)),
            "\\PC{0,12}".prop_map(Value::Str),
        ]
    }

    fn arb_cmp() -> impl Strategy<Value = Cmp> {
        prop_oneof![
            Just(Cmp::Eq),
            Just(Cmp::Ne),
            Just(Cmp::Lt),
            Just(Cmp::Le),
            Just(Cmp::Gt),
            Just(Cmp::Ge),
        ]
    }

    fn type_of_code(code: u8) -> AttrType {
        match code % 3 {
            0 => AttrType::Bool,
            1 => AttrType::Int,
            _ => AttrType::Str,
        }
    }

    /// Distinctly named attributes (`<prefix>0..`, types from codes).
    fn schema_from(codes: &[u8], prefix: &str) -> FlatSchema {
        FlatSchema::new(
            codes
                .iter()
                .enumerate()
                .map(|(i, &c)| Attr::new(&format!("{prefix}{i}"), type_of_code(c))),
        )
        .expect("generated names are distinct")
    }

    fn nested_schema_from(obj_codes: &[u8], emb_codes: &[u8]) -> NestedSchema {
        NestedSchema {
            name: "R".into(),
            object_attrs: schema_from(obj_codes, "o"),
            embedded_name: "E".into(),
            embedded: schema_from(emb_codes, "e"),
        }
    }

    fn next(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    /// One value of exactly the given type, drawn from the seed stream.
    fn value_of(ty: AttrType, state: &mut u64) -> Value {
        let r = next(state);
        match ty {
            AttrType::Bool => Value::Bool(r & 1 == 1),
            AttrType::Int => Value::Int(r as i64 - (1 << 30)),
            AttrType::Str => Value::Str(format!("s{}", r % 7)),
        }
    }

    fn tuple_for(schema: &FlatSchema, state: &mut u64) -> DataTuple {
        DataTuple::new(schema.attrs().iter().map(|a| value_of(a.ty, state)))
    }

    fn relation_from(
        obj_codes: &[u8],
        emb_codes: &[u8],
        seed: u64,
        objects: usize,
    ) -> NestedRelation {
        let schema = nested_schema_from(obj_codes, emb_codes);
        let mut state = seed | 1;
        let mut rel = NestedRelation::new(schema);
        for _ in 0..objects {
            let attrs = tuple_for(&rel.schema.object_attrs, &mut state);
            let tuples = (0..next(&mut state) % 4)
                .map(|_| tuple_for(&rel.schema.embedded, &mut state))
                .collect();
            rel.push(NestedObject::new(attrs, tuples))
                .expect("generated objects are well-typed");
        }
        rel
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn values_round_trip(v in arb_value()) {
            let line = qhorn_json::to_string(&v);
            prop_assert_eq!(qhorn_json::from_str::<Value>(&line).unwrap(), v);
        }

        #[test]
        fn nested_schemas_round_trip(
            obj_codes in prop::collection::vec(0u8..3, 1..5),
            emb_codes in prop::collection::vec(0u8..3, 1..5),
        ) {
            let s = nested_schema_from(&obj_codes, &emb_codes);
            let line = qhorn_json::to_string(&s);
            prop_assert_eq!(qhorn_json::from_str::<NestedSchema>(&line).unwrap(), s);
        }

        #[test]
        fn propositions_round_trip(
            seed in any::<u64>(),
            attr in "\\PC{1,8}",
            cmp in arb_cmp(),
            rhs in arb_value(),
        ) {
            let p = Proposition { name: format!("p{}", seed % 1000), attr, cmp, rhs };
            let line = qhorn_json::to_string(&p);
            prop_assert_eq!(qhorn_json::from_str::<Proposition>(&line).unwrap(), p);
        }

        #[test]
        fn relations_round_trip(
            obj_codes in prop::collection::vec(0u8..3, 1..4),
            emb_codes in prop::collection::vec(0u8..3, 1..5),
            seed in any::<u64>(),
            objects in 0usize..5,
        ) {
            let rel = relation_from(&obj_codes, &emb_codes, seed, objects);
            let line = qhorn_json::to_string(&rel);
            prop_assert_eq!(qhorn_json::from_str::<NestedRelation>(&line).unwrap(), rel);
        }

        #[test]
        fn hints_round_trip(
            codes in prop::collection::vec(0u8..3, 0..4),
            seed in any::<u64>(),
        ) {
            let mut state = seed | 1;
            let mut hints = DomainHints::none();
            for (i, &c) in codes.iter().enumerate() {
                let values: Vec<Value> = (0..next(&mut state) % 3)
                    .map(|_| value_of(type_of_code(c), &mut state))
                    .collect();
                hints = hints.with(&format!("a{i}"), values);
            }
            let line = qhorn_json::to_string(&hints);
            let back: DomainHints = qhorn_json::from_str(&line).unwrap();
            prop_assert_eq!(back, hints);
        }
    }
}
