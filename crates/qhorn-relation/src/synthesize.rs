//! The backward Boolean→data transform: realizing the learner's membership
//! questions as actual data objects.
//!
//! §5 ("arbitrary examples"): the paper's rebuttal to the classic active-
//! learning criticism is that qhorn questions are synthesized *in the data
//! domain*. Given a Boolean tuple, the synthesizer solves, per attribute,
//! the conjunction of signed proposition constraints and emits a concrete
//! tuple — or reports exactly which propositions conflict, which is how
//! joint (beyond pairwise) interference surfaces.

use crate::binding::Booleanizer;
use crate::interference::AttrConstraints;
use crate::relation::{DataTuple, NestedObject};
use crate::value::{AttrType, Value};
use qhorn_core::{BoolTuple, Obj, VarId};
use std::collections::BTreeMap;
use std::fmt;

/// Preferred values per attribute, tried before synthetic ones — e.g. real
/// origins from the store's inventory, so examples look natural to users.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DomainHints {
    per_attr: BTreeMap<String, Vec<Value>>,
}

impl DomainHints {
    /// No hints.
    #[must_use]
    pub fn none() -> Self {
        DomainHints::default()
    }

    /// Adds a candidate pool for one attribute.
    #[must_use]
    pub fn with(mut self, attr: &str, values: Vec<Value>) -> Self {
        self.per_attr.insert(attr.to_string(), values);
        self
    }

    fn get(&self, attr: &str) -> &[Value] {
        self.per_attr.get(attr).map_or(&[], Vec::as_slice)
    }

    /// Iterates `(attribute, candidate values)` pairs in attribute order
    /// (the wire format serializes these).
    pub fn entries(&self) -> impl Iterator<Item = (&str, &[Value])> {
        self.per_attr
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }
}

/// Synthesis failure: no value of `attr` realizes the requested truth
/// pattern of the propositions constraining it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SynthesisError {
    /// The over-constrained attribute.
    pub attr: String,
    /// The propositions (by name) constraining it, with their requested
    /// truth values.
    pub constraints: Vec<(String, bool)>,
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no value of attribute {:?} satisfies ", self.attr)?;
        for (i, (p, v)) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{}{p}", if *v { "" } else { "¬" })?;
        }
        Ok(())
    }
}

impl std::error::Error for SynthesisError {}

/// Synthesizes data tuples/objects from Boolean ones, inverting a
/// [`Booleanizer`].
#[derive(Clone, Debug)]
pub struct Synthesizer<'a> {
    bridge: &'a Booleanizer,
    hints: DomainHints,
}

impl<'a> Synthesizer<'a> {
    /// A synthesizer over the given binding and hints.
    #[must_use]
    pub fn new(bridge: &'a Booleanizer, hints: DomainHints) -> Self {
        Synthesizer { bridge, hints }
    }

    /// Synthesizes one data tuple whose Boolean abstraction is exactly
    /// `bt`.
    ///
    /// # Errors
    /// [`SynthesisError`] naming the over-constrained attribute when the
    /// pattern is unrealizable (joint proposition interference).
    ///
    /// # Panics
    /// Panics if `bt`'s arity differs from the binding's.
    pub fn synthesize_tuple(&self, bt: &BoolTuple) -> Result<DataTuple, SynthesisError> {
        assert_eq!(bt.arity(), self.bridge.n(), "arity mismatch");
        let schema = self.bridge.schema();
        let mut values: Vec<Value> = Vec::with_capacity(schema.arity());
        for (idx, attr) in schema.attrs().iter().enumerate() {
            let mut constraints = AttrConstraints::new();
            let mut involved: Vec<(String, bool)> = Vec::new();
            for (i, p) in self.bridge.props().iter().enumerate() {
                if schema.index_of(&p.attr).expect("validated") != idx {
                    continue;
                }
                let positive = bt.get(VarId(i as u16));
                constraints.add(p.cmp, &p.rhs, positive);
                involved.push((p.name.clone(), positive));
            }
            let value = if constraints.is_unconstrained() {
                self.default_value(&attr.name, attr.ty)
            } else {
                constraints
                    .solve(self.hints.get(&attr.name))
                    .ok_or(SynthesisError {
                        attr: attr.name.clone(),
                        constraints: involved,
                    })?
            };
            values.push(value);
        }
        debug_assert_eq!(
            self.bridge
                .booleanize_tuple(&DataTuple::new(values.clone()))
                .expect("synthesized tuple is well-typed"),
            *bt,
            "synthesis must invert booleanization"
        );
        Ok(DataTuple::new(values))
    }

    /// Synthesizes a whole object (the learner's membership question) from
    /// a Boolean object.
    pub fn synthesize_object(
        &self,
        obj: &Obj,
        object_attrs: DataTuple,
    ) -> Result<NestedObject, SynthesisError> {
        let tuples: Result<Vec<DataTuple>, SynthesisError> = obj
            .tuples()
            .iter()
            .map(|t| self.synthesize_tuple(t))
            .collect();
        Ok(NestedObject::new(object_attrs, tuples?))
    }

    fn default_value(&self, attr: &str, ty: AttrType) -> Value {
        if let Some(v) = self.hints.get(attr).first() {
            return v.clone();
        }
        match ty {
            AttrType::Bool => Value::Bool(false),
            AttrType::Int => Value::Int(0),
            AttrType::Str => Value::str("unspecified"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::chocolates;
    use crate::proposition::{Cmp, Proposition};
    use crate::schema::{Attr, FlatSchema};

    fn bridge() -> Booleanizer {
        Booleanizer::new(
            chocolates::schema().embedded.clone(),
            chocolates::propositions(),
        )
        .unwrap()
    }

    #[test]
    fn synthesizes_each_boolean_pattern() {
        let b = bridge();
        let synth = Synthesizer::new(&b, chocolates::hints());
        for bits in ["000", "001", "010", "011", "100", "101", "110", "111"] {
            let bt = BoolTuple::from_bits(bits);
            let t = synth.synthesize_tuple(&bt).unwrap();
            assert_eq!(b.booleanize_tuple(&t).unwrap(), bt, "pattern {bits}");
        }
    }

    #[test]
    fn synthesizes_objects() {
        let b = bridge();
        let synth = Synthesizer::new(&b, DomainHints::none());
        let obj = Obj::from_bits("111 011");
        let data = synth
            .synthesize_object(&obj, DataTuple::new([Value::str("Example Box")]))
            .unwrap();
        assert_eq!(data.tuples.len(), 2);
        assert_eq!(b.booleanize_object(&data).unwrap(), obj);
    }

    #[test]
    fn joint_interference_reported_with_culprits() {
        // pm: origin=Madagascar, pb: origin=Belgium — pattern 11 is
        // unrealizable.
        let schema = chocolates::schema().embedded.clone();
        let props = vec![
            Proposition::eq("pm", "origin", Value::str("Madagascar")),
            Proposition::eq("pb", "origin", Value::str("Belgium")),
        ];
        let b = Booleanizer::new(schema, props).unwrap();
        let synth = Synthesizer::new(&b, DomainHints::none());
        let err = synth
            .synthesize_tuple(&BoolTuple::from_bits("11"))
            .unwrap_err();
        assert_eq!(err.attr, "origin");
        assert_eq!(err.constraints.len(), 2);
        assert!(err.to_string().contains("pm"));
        // 10, 01, 00 are all realizable.
        for bits in ["10", "01", "00"] {
            assert!(
                synth.synthesize_tuple(&BoolTuple::from_bits(bits)).is_ok(),
                "{bits}"
            );
        }
    }

    #[test]
    fn integer_ranges_synthesize() {
        let schema = FlatSchema::new([Attr::new("cocoa", AttrType::Int)]).unwrap();
        let props = vec![
            Proposition::new("hi", "cocoa", Cmp::Ge, Value::Int(70)),
            Proposition::new("vhi", "cocoa", Cmp::Ge, Value::Int(90)),
        ];
        let b = Booleanizer::new(schema, props).unwrap();
        let synth = Synthesizer::new(&b, DomainHints::none());
        // 10: cocoa in [70, 89].
        let t = synth.synthesize_tuple(&BoolTuple::from_bits("10")).unwrap();
        assert!(matches!(t.get(0), Value::Int(c) if (70..90).contains(c)));
        // 01 is interference: ≥90 implies ≥70.
        assert!(synth.synthesize_tuple(&BoolTuple::from_bits("01")).is_err());
        // 11 and 00 fine.
        assert!(synth.synthesize_tuple(&BoolTuple::from_bits("11")).is_ok());
        assert!(synth.synthesize_tuple(&BoolTuple::from_bits("00")).is_ok());
    }

    #[test]
    fn hints_make_examples_natural() {
        let b = bridge();
        let hints = DomainHints::none().with("origin", vec![Value::str("Belgium")]);
        let synth = Synthesizer::new(&b, hints);
        // Pattern with p3 (Madagascar) false: the hint should be used.
        let t = synth
            .synthesize_tuple(&BoolTuple::from_bits("110"))
            .unwrap();
        assert_eq!(
            t.get_named(b.schema(), "origin").unwrap(),
            &Value::str("Belgium")
        );
    }
}
