//! The forward data→Boolean transform (Fig. 1): each proposition `p_i`
//! becomes Boolean variable `x_i`; each embedded tuple becomes a
//! [`qhorn_core::BoolTuple`]; each object becomes a [`qhorn_core::Obj`].

use crate::interference::{check_pairwise_independence, Interference};
use crate::proposition::{PropError, Proposition};
use crate::relation::{DataTuple, NestedObject};
use crate::schema::FlatSchema;
use qhorn_core::{BoolTuple, Obj, VarId, VarSet};

/// Binds an ordered proposition list to Boolean variables `x1..xn` over an
/// embedded-relation schema.
#[derive(Clone, Debug)]
pub struct Booleanizer {
    schema: FlatSchema,
    props: Vec<Proposition>,
}

impl Booleanizer {
    /// Validates every proposition against the schema.
    pub fn new(schema: FlatSchema, props: Vec<Proposition>) -> Result<Self, PropError> {
        for p in &props {
            p.validate(&schema)?;
        }
        Ok(Booleanizer { schema, props })
    }

    /// Number of Boolean variables (= propositions).
    #[must_use]
    pub fn n(&self) -> u16 {
        self.props.len() as u16
    }

    /// The bound propositions, in variable order (`props()[i]` is `x_{i+1}`).
    #[must_use]
    pub fn props(&self) -> &[Proposition] {
        &self.props
    }

    /// The embedded-relation schema.
    #[must_use]
    pub fn schema(&self) -> &FlatSchema {
        &self.schema
    }

    /// The variable bound to a proposition name, if any.
    #[must_use]
    pub fn var_of(&self, prop_name: &str) -> Option<VarId> {
        self.props
            .iter()
            .position(|p| p.name == prop_name)
            .map(|i| VarId(i as u16))
    }

    /// Transforms one data tuple into its Boolean abstraction.
    pub fn booleanize_tuple(&self, t: &DataTuple) -> Result<BoolTuple, PropError> {
        let mut trues = VarSet::new();
        for (i, p) in self.props.iter().enumerate() {
            if p.eval(t, &self.schema)? {
                trues.insert(VarId(i as u16));
            }
        }
        Ok(BoolTuple::from_true_set(self.n(), trues))
    }

    /// Transforms an object (its embedded tuple set) into a Boolean-domain
    /// object. Distinct data tuples with identical proposition patterns
    /// collapse, matching the paper's set semantics.
    pub fn booleanize_object(&self, o: &NestedObject) -> Result<Obj, PropError> {
        let tuples: Result<Vec<BoolTuple>, PropError> =
            o.tuples.iter().map(|t| self.booleanize_tuple(t)).collect();
        Ok(Obj::new(self.n(), tuples?))
    }

    /// Runs the §2 assumption (ii) check: pairwise independence of the
    /// bound propositions.
    #[must_use]
    pub fn check_independence(&self) -> Vec<Interference> {
        check_pairwise_independence(&self.props)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::chocolates;
    use crate::value::Value;

    fn bridge() -> Booleanizer {
        Booleanizer::new(
            chocolates::schema().embedded.clone(),
            chocolates::propositions(),
        )
        .unwrap()
    }

    #[test]
    fn fig1_transform() {
        // p1: isDark, p2: hasFilling, p3: origin = Madagascar.
        let b = bridge();
        assert_eq!(b.n(), 3);
        let t = DataTuple::new([
            Value::str("Madagascar"),
            Value::Bool(true),  // isSugarFree (not bound)
            Value::Bool(true),  // isDark
            Value::Bool(true),  // hasFilling
            Value::Bool(false), // hasNuts
        ]);
        assert_eq!(b.booleanize_tuple(&t).unwrap().to_bits(), "111");
    }

    #[test]
    fn fig1_boxes_booleanize() {
        let b = bridge();
        let rel = chocolates::fig1_boxes();
        let s1 = b.booleanize_object(&rel.objects[0]).unwrap();
        // Global Ground (Fig. 1): Madagascar dark filled (111), Belgium
        // non-dark unfilled (000), Germany dark filled non-Madagascar (110).
        assert_eq!(s1, Obj::from_bits("111 000 110"));
        let s2 = b.booleanize_object(&rel.objects[1]).unwrap();
        // Europe's Finest: two Belgium chocolates collapse onto patterns
        // {110, 010} plus Sweden 010 — dedup applies.
        assert_eq!(s2.arity(), 3);
        assert!(s2.len() <= rel.objects[1].tuples.len());
    }

    #[test]
    fn var_of_names() {
        let b = bridge();
        assert_eq!(b.var_of("p1"), Some(VarId(0)));
        assert_eq!(b.var_of("p3"), Some(VarId(2)));
        assert_eq!(b.var_of("nope"), None);
    }

    #[test]
    fn invalid_props_rejected() {
        let schema = chocolates::schema().embedded.clone();
        let bad = vec![Proposition::is_true("p", "noSuchAttr")];
        assert!(Booleanizer::new(schema, bad).is_err());
    }

    #[test]
    fn independence_check_flags_interfering_origins() {
        let schema = chocolates::schema().embedded.clone();
        let props = vec![
            Proposition::eq("pm", "origin", Value::str("Madagascar")),
            Proposition::eq("pb", "origin", Value::str("Belgium")),
        ];
        let b = Booleanizer::new(schema, props).unwrap();
        let found = b.check_independence();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].combination, (true, true));
    }

    #[test]
    fn paper_propositions_are_independent() {
        assert!(bridge().check_independence().is_empty());
    }
}
