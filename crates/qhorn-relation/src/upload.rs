//! User-defined dataset definitions — the unit a client uploads to the
//! learning service and the unit the durable store logs, so a session over
//! a user's own data (the setting of §1/§5: the examples are *their*
//! chocolate boxes, not ours) survives a server restart.
//!
//! A [`DatasetDef`] bundles everything the service needs to rebuild the
//! dataset from nothing: the nested relation (schema + objects), the
//! propositions binding Boolean variables `x1..xn` over the embedded
//! schema, and optional synthesis hints. [`DatasetDef::validate`] runs the
//! semantic checks that JSON structure alone cannot express.

use crate::binding::Booleanizer;
use crate::proposition::Proposition;
use crate::relation::NestedRelation;
use crate::synthesize::DomainHints;
use qhorn_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// Longest accepted dataset name (names appear in URLs, log lines, and
/// error messages).
pub const MAX_NAME_LEN: usize = 64;

/// Most propositions one dataset may bind. The learner's question count
/// is polynomial in `n`, but the subset-space structures behind
/// verification are not — and `n` arrives from the wire.
pub const MAX_PROPOSITIONS: usize = 64;

/// A complete user-defined dataset: name, data, propositions, hints.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetDef {
    /// Catalog name the dataset registers under.
    pub name: String,
    /// The nested relation (schema + objects).
    pub relation: NestedRelation,
    /// Propositions binding `x1..xn` over the embedded schema.
    pub propositions: Vec<Proposition>,
    /// Preferred values for synthesized examples (may be empty).
    pub hints: DomainHints,
}

/// Why a [`DatasetDef`] was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DefError(String);

impl DefError {
    fn new(msg: impl Into<String>) -> Self {
        DefError(msg.into())
    }
}

impl fmt::Display for DefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DefError {}

impl DatasetDef {
    /// Runs every semantic check and returns the ready [`Booleanizer`]:
    /// the name is usable, at least one (and at most
    /// [`MAX_PROPOSITIONS`]) propositions are bound, every proposition
    /// validates against the embedded schema, proposition names are
    /// distinct, and every hint value's type matches its attribute —
    /// the synthesizer trusts hints, so an unchecked wrong-typed hint
    /// would surface as a mis-realized question mid-session. (Objects
    /// were already validated against the schema at construction/parse
    /// time.)
    ///
    /// # Errors
    /// [`DefError`] naming the first violated rule.
    pub fn validate(&self) -> Result<Booleanizer, DefError> {
        if self.name.is_empty() {
            return Err(DefError::new("dataset name must not be empty"));
        }
        if self.name.len() > MAX_NAME_LEN {
            return Err(DefError::new(format!(
                "dataset name exceeds {MAX_NAME_LEN} bytes"
            )));
        }
        if self
            .name
            .chars()
            .any(|c| c.is_control() || c.is_whitespace())
        {
            return Err(DefError::new(
                "dataset name must not contain whitespace or control characters",
            ));
        }
        if self.propositions.is_empty() {
            return Err(DefError::new(
                "a dataset needs at least one proposition to learn over",
            ));
        }
        if self.propositions.len() > MAX_PROPOSITIONS {
            return Err(DefError::new(format!(
                "{} propositions exceed the maximum of {MAX_PROPOSITIONS}",
                self.propositions.len()
            )));
        }
        for (i, p) in self.propositions.iter().enumerate() {
            if self.propositions[..i].iter().any(|q| q.name == p.name) {
                return Err(DefError::new(format!(
                    "duplicate proposition name {:?}",
                    p.name
                )));
            }
        }
        for (attr, values) in self.hints.entries() {
            let ty = self
                .relation
                .schema
                .embedded
                .type_of(attr)
                .map_err(|e| DefError::new(format!("hint {e}")))?;
            for v in values {
                if v.attr_type() != ty {
                    return Err(DefError::new(format!(
                        "hint value {v} for attribute {attr:?} is {}, expected {ty}",
                        v.attr_type()
                    )));
                }
            }
        }
        Booleanizer::new(
            self.relation.schema.embedded.clone(),
            self.propositions.clone(),
        )
        .map_err(|e| DefError::new(e.to_string()))
    }
}

impl ToJson for DatasetDef {
    fn to_json(&self) -> Json {
        Json::object([
            ("name", self.name.to_json()),
            ("schema", self.relation.schema.to_json()),
            ("objects", self.relation.objects.to_json()),
            ("propositions", self.propositions.to_json()),
            ("hints", self.hints.to_json()),
        ])
    }
}

impl FromJson for DatasetDef {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        // Reuse NestedRelation's parse (and its schema validation of
        // every object) by reshaping the flat upload form.
        let relation = NestedRelation::from_json(&Json::object([
            ("schema", j.field("schema")?.clone()),
            ("objects", j.field("objects")?.clone()),
        ]))?;
        Ok(DatasetDef {
            name: String::from_json(j.field("name")?)?,
            relation,
            propositions: Vec::<Proposition>::from_json(j.field("propositions")?)?,
            // Hints are optional on the wire (absent or null = none).
            hints: match j.get("hints") {
                None => DomainHints::none(),
                Some(h) if h.is_null() => DomainHints::none(),
                Some(h) => DomainHints::from_json(h)?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::chocolates;
    use crate::value::Value;

    fn def() -> DatasetDef {
        DatasetDef {
            name: "my-shop".into(),
            relation: chocolates::fig1_boxes(),
            propositions: chocolates::propositions(),
            hints: chocolates::hints(),
        }
    }

    #[test]
    fn valid_definition_round_trips_and_validates() {
        let d = def();
        let bridge = d.validate().unwrap();
        assert_eq!(bridge.n(), 3);
        let line = qhorn_json::to_string(&d);
        let back: DatasetDef = qhorn_json::from_str(&line).unwrap();
        assert_eq!(back.name, d.name);
        assert_eq!(back.relation, d.relation);
        assert_eq!(back.propositions, d.propositions);
        assert_eq!(qhorn_json::to_string(&back), line);
    }

    #[test]
    fn hints_are_optional_on_the_wire() {
        let mut j = def().to_json();
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "hints");
        }
        let back: DatasetDef = qhorn_json::from_str(&j.to_compact()).unwrap();
        assert!(back.hints.entries().next().is_none());
        back.validate().unwrap();
        // Explicit null works too.
        if let Json::Obj(pairs) = &mut j {
            pairs.push(("hints".into(), Json::Null));
        }
        let back: DatasetDef = qhorn_json::from_str(&j.to_compact()).unwrap();
        assert!(back.hints.entries().next().is_none());
    }

    #[test]
    fn validation_rejects_bad_definitions() {
        let mut d = def();
        d.name = String::new();
        assert!(d.validate().is_err());

        let mut d = def();
        d.name = "has space".into();
        assert!(d.validate().is_err());

        let mut d = def();
        d.name = "x".repeat(MAX_NAME_LEN + 1);
        assert!(d.validate().is_err());

        let mut d = def();
        d.propositions.clear();
        assert!(d.validate().is_err());

        let mut d = def();
        d.propositions.push(d.propositions[0].clone());
        let err = d.validate().unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");

        // A proposition over an attribute the embedded schema lacks.
        let mut d = def();
        d.propositions
            .push(Proposition::is_true("px", "noSuchAttr"));
        assert!(d.validate().is_err());

        // A proposition whose constant type mismatches the attribute.
        let mut d = def();
        d.propositions
            .push(Proposition::eq("px", "isDark", Value::Int(1)));
        assert!(d.validate().is_err());

        // A hint over an attribute the embedded schema lacks.
        let mut d = def();
        d.hints = d.hints.with("noSuchAttr", vec![Value::str("x")]);
        let err = d.validate().unwrap_err();
        assert!(err.to_string().contains("noSuchAttr"), "{err}");

        // A hint value whose type mismatches the attribute — the
        // synthesizer would otherwise realize wrong-typed questions.
        let mut d = def();
        d.hints = d.hints.with("origin", vec![Value::Int(7)]);
        let err = d.validate().unwrap_err();
        assert!(err.to_string().contains("expected string"), "{err}");
    }
}
