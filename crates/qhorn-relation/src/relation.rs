//! Data tuples, flat relations and nested relations (objects with embedded
//! tuple sets — the paper's boxes of chocolates).

use crate::schema::{FlatSchema, NestedSchema, SchemaError};
use crate::value::Value;
use std::fmt;

/// One tuple of attribute values (positional, checked against a
/// [`FlatSchema`] on insertion into a relation).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct DataTuple {
    values: Vec<Value>,
}

impl DataTuple {
    /// Builds a tuple from values.
    #[must_use]
    pub fn new<I: IntoIterator<Item = Value>>(values: I) -> Self {
        DataTuple {
            values: values.into_iter().collect(),
        }
    }

    /// The values, in schema order.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at a schema index.
    #[must_use]
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Value of a named attribute under `schema`.
    pub fn get_named(&self, schema: &FlatSchema, name: &str) -> Result<&Value, SchemaError> {
        Ok(&self.values[schema.index_of(name)?])
    }
}

impl fmt::Display for DataTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A flat relation: a schema plus a set of tuples (Def. 2.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FlatRelation {
    /// The relation's schema.
    pub schema: FlatSchema,
    tuples: Vec<DataTuple>,
}

impl FlatRelation {
    /// An empty relation over `schema`.
    #[must_use]
    pub fn new(schema: FlatSchema) -> Self {
        FlatRelation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Inserts a tuple after validating it against the schema.
    pub fn push(&mut self, t: DataTuple) -> Result<(), SchemaError> {
        self.schema.check_tuple(t.values())?;
        self.tuples.push(t);
        Ok(())
    }

    /// The tuples.
    #[must_use]
    pub fn tuples(&self) -> &[DataTuple] {
        &self.tuples
    }

    /// Number of tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff the relation has no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// One object of a nested relation: object-level attributes plus the
/// embedded tuple set (a box of chocolates).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NestedObject {
    /// Object-level attribute values (e.g. the box's name).
    pub attrs: DataTuple,
    /// The embedded tuples (the chocolates).
    pub tuples: Vec<DataTuple>,
}

impl NestedObject {
    /// Convenience constructor.
    #[must_use]
    pub fn new(attrs: DataTuple, tuples: Vec<DataTuple>) -> Self {
        NestedObject { attrs, tuples }
    }
}

/// A nested relation: schema plus objects.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NestedRelation {
    /// The nested schema.
    pub schema: NestedSchema,
    /// The objects.
    pub objects: Vec<NestedObject>,
}

impl NestedRelation {
    /// An empty nested relation.
    #[must_use]
    pub fn new(schema: NestedSchema) -> Self {
        NestedRelation {
            schema,
            objects: Vec::new(),
        }
    }

    /// Inserts an object after validating object attributes and every
    /// embedded tuple.
    pub fn push(&mut self, o: NestedObject) -> Result<(), SchemaError> {
        self.schema.object_attrs.check_tuple(o.attrs.values())?;
        for t in &o.tuples {
            self.schema.embedded.check_tuple(t.values())?;
        }
        self.objects.push(o);
        Ok(())
    }

    /// Number of objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` iff there are no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attr;
    use crate::value::AttrType;

    fn chocolate_schema() -> FlatSchema {
        FlatSchema::new([
            Attr::new("isDark", AttrType::Bool),
            Attr::new("origin", AttrType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn flat_relation_validates_on_push() {
        let mut r = FlatRelation::new(chocolate_schema());
        assert!(r.is_empty());
        r.push(DataTuple::new([Value::Bool(true), Value::str("Belgium")]))
            .unwrap();
        assert_eq!(r.len(), 1);
        let err = r.push(DataTuple::new([Value::str("oops"), Value::str("Belgium")]));
        assert!(err.is_err());
        assert_eq!(r.len(), 1, "invalid tuple not inserted");
    }

    #[test]
    fn named_access() {
        let t = DataTuple::new([Value::Bool(true), Value::str("Belgium")]);
        let s = chocolate_schema();
        assert_eq!(t.get_named(&s, "origin").unwrap(), &Value::str("Belgium"));
        assert!(t.get_named(&s, "cocoa").is_err());
        assert_eq!(t.get(0), &Value::Bool(true));
    }

    #[test]
    fn tuple_display() {
        let t = DataTuple::new([Value::Bool(true), Value::str("Belgium")]);
        assert_eq!(t.to_string(), "(true, \"Belgium\")");
    }

    #[test]
    fn nested_relation_validates_embedded_tuples() {
        let schema = NestedSchema::new(
            "Box",
            FlatSchema::new([Attr::new("name", AttrType::Str)]).unwrap(),
            "Chocolate",
            chocolate_schema(),
        );
        let mut rel = NestedRelation::new(schema);
        let ok = NestedObject::new(
            DataTuple::new([Value::str("Global Ground")]),
            vec![DataTuple::new([
                Value::Bool(true),
                Value::str("Madagascar"),
            ])],
        );
        rel.push(ok).unwrap();
        assert_eq!(rel.len(), 1);
        let bad = NestedObject::new(
            DataTuple::new([Value::str("Broken")]),
            vec![DataTuple::new([Value::Int(7), Value::str("Madagascar")])],
        );
        assert!(rel.push(bad).is_err());
        assert_eq!(rel.len(), 1);
    }
}
