//! Built-in datasets — the paper's chocolate-shop running example (Fig. 1)
//! and deterministic synthetic stores for demos and benchmarks.

use crate::binding::Booleanizer;
use crate::proposition::Proposition;
use crate::relation::{DataTuple, NestedObject, NestedRelation};
use crate::schema::{Attr, FlatSchema, NestedSchema};
use crate::synthesize::DomainHints;
use crate::value::AttrType;
use crate::value::Value;

/// The chocolate-shop example (Fig. 1).
pub mod chocolates {
    use super::*;

    /// `Box(name, Chocolate(origin, isSugarFree, isDark, hasFilling,
    /// hasNuts))` — the schema of Fig. 1, attributes in column order.
    #[must_use]
    pub fn schema() -> NestedSchema {
        NestedSchema::new(
            "Box",
            FlatSchema::new([Attr::new("name", AttrType::Str)]).expect("valid"),
            "Chocolate",
            FlatSchema::new([
                Attr::new("origin", AttrType::Str),
                Attr::new("isSugarFree", AttrType::Bool),
                Attr::new("isDark", AttrType::Bool),
                Attr::new("hasFilling", AttrType::Bool),
                Attr::new("hasNuts", AttrType::Bool),
            ])
            .expect("valid"),
        )
    }

    /// The paper's propositions: `p1: c.isDark`, `p2: c.hasFilling`,
    /// `p3: c.origin = Madagascar`.
    #[must_use]
    pub fn propositions() -> Vec<Proposition> {
        vec![
            Proposition::is_true("p1", "isDark"),
            Proposition::is_true("p2", "hasFilling"),
            Proposition::eq("p3", "origin", Value::str("Madagascar")),
        ]
    }

    /// A ready-made [`Booleanizer`] binding [`propositions`] over the
    /// embedded schema.
    #[must_use]
    pub fn booleanizer() -> Booleanizer {
        Booleanizer::new(schema().embedded.clone(), propositions()).expect("valid propositions")
    }

    /// The two boxes of Fig. 1: *Global Ground* and *Europe's Finest*.
    #[must_use]
    pub fn fig1_boxes() -> NestedRelation {
        let mut rel = NestedRelation::new(schema());
        rel.push(NestedObject::new(
            DataTuple::new([Value::str("Global Ground")]),
            vec![
                chocolate("Madagascar", true, true, true, false),
                chocolate("Belgium", true, false, false, true),
                chocolate("Germany", true, true, true, true),
            ],
        ))
        .expect("well-typed");
        rel.push(NestedObject::new(
            DataTuple::new([Value::str("Europe's Finest")]),
            vec![
                chocolate("Belgium", true, true, false, false),
                chocolate("Belgium", false, true, false, true),
                chocolate("Sweden", false, true, true, true),
            ],
        ))
        .expect("well-typed");
        rel
    }

    /// One chocolate tuple in schema order.
    #[must_use]
    pub fn chocolate(
        origin: &str,
        sugar_free: bool,
        dark: bool,
        filling: bool,
        nuts: bool,
    ) -> DataTuple {
        DataTuple::new([
            Value::str(origin),
            Value::Bool(sugar_free),
            Value::Bool(dark),
            Value::Bool(filling),
            Value::Bool(nuts),
        ])
    }

    /// Natural-looking value pools for synthesized examples.
    #[must_use]
    pub fn hints() -> DomainHints {
        DomainHints::none().with(
            "origin",
            vec![
                Value::str("Belgium"),
                Value::str("Germany"),
                Value::str("Sweden"),
                Value::str("Ecuador"),
            ],
        )
    }

    /// A ready-made uploadable [`crate::upload::DatasetDef`] of the
    /// Fig. 1 boxes under the given catalog name (demos and tests).
    #[must_use]
    pub fn dataset_def(name: &str) -> crate::upload::DatasetDef {
        crate::upload::DatasetDef {
            name: name.to_string(),
            relation: fig1_boxes(),
            propositions: propositions(),
            hints: hints(),
        }
    }

    /// The intro's intended query (1): `∀c (isDark) ∧ ∃c (hasFilling ∧
    /// origin = Madagascar)`, i.e. `∀x1 ∃x2x3`.
    #[must_use]
    pub fn intro_query() -> qhorn_core::Query {
        qhorn_core::Query::new(
            3,
            [
                qhorn_core::Expr::universal_bodyless(qhorn_core::VarId(0)),
                qhorn_core::Expr::conj(qhorn_core::VarSet::from_indices([1, 2])),
            ],
        )
        .expect("valid")
    }

    /// A deterministic assorted inventory of `count` boxes covering a
    /// variety of Boolean patterns (a simple multiplicative-congruential
    /// stream keeps this crate dependency-free; statistical quality is
    /// irrelevant here).
    #[must_use]
    pub fn assorted_boxes(count: usize) -> NestedRelation {
        let mut rel = NestedRelation::new(schema());
        let origins = ["Madagascar", "Belgium", "Germany", "Sweden", "Ecuador"];
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for b in 0..count {
            let size = 1 + next() % 5;
            let tuples: Vec<DataTuple> = (0..size)
                .map(|_| {
                    let r = next();
                    chocolate(
                        origins[r % origins.len()],
                        r & 8 != 0,
                        r & 16 != 0,
                        r & 32 != 0,
                        r & 64 != 0,
                    )
                })
                .collect();
            rel.push(NestedObject::new(
                DataTuple::new([Value::Str(format!("Box #{b}"))]),
                tuples,
            ))
            .expect("well-typed");
        }
        rel
    }
}

/// A second dataset with integer attributes — exercises the ordering
/// propositions and the interval reasoning in synthesis/interference.
pub mod cellars {
    use super::*;
    use crate::proposition::Cmp;

    /// `Cellar(label, Bottle(vintage, rating, region))`.
    #[must_use]
    pub fn schema() -> NestedSchema {
        NestedSchema::new(
            "Cellar",
            FlatSchema::new([Attr::new("label", AttrType::Str)]).expect("valid"),
            "Bottle",
            FlatSchema::new([
                Attr::new("vintage", AttrType::Int),
                Attr::new("rating", AttrType::Int),
                Attr::new("region", AttrType::Str),
            ])
            .expect("valid"),
        )
    }

    /// Propositions with ordering comparisons:
    /// `x1: vintage ≥ 2010`, `x2: rating ≥ 90`, `x3: region = Rhône`.
    #[must_use]
    pub fn propositions() -> Vec<Proposition> {
        vec![
            Proposition::new("recent", "vintage", Cmp::Ge, Value::Int(2010)),
            Proposition::new("excellent", "rating", Cmp::Ge, Value::Int(90)),
            Proposition::eq("rhone", "region", Value::str("Rhône")),
        ]
    }

    /// A ready-made [`Booleanizer`] over [`propositions`].
    #[must_use]
    pub fn booleanizer() -> Booleanizer {
        Booleanizer::new(schema().embedded.clone(), propositions()).expect("valid propositions")
    }

    /// One bottle in schema order.
    #[must_use]
    pub fn bottle(vintage: i64, rating: i64, region: &str) -> DataTuple {
        DataTuple::new([Value::Int(vintage), Value::Int(rating), Value::str(region)])
    }

    /// Value pools keeping synthesized examples plausible.
    #[must_use]
    pub fn hints() -> DomainHints {
        DomainHints::none()
            .with("vintage", vec![Value::Int(2015), Value::Int(1998)])
            .with("rating", vec![Value::Int(93), Value::Int(84)])
            .with(
                "region",
                vec![
                    Value::str("Bordeaux"),
                    Value::str("Rioja"),
                    Value::str("Mosel"),
                ],
            )
    }

    /// A deterministic cellar inventory of `count` cellars.
    #[must_use]
    pub fn inventory(count: usize) -> NestedRelation {
        let regions = ["Rhône", "Bordeaux", "Rioja", "Mosel", "Barossa"];
        let mut rel = NestedRelation::new(schema());
        let mut state = 0xA5A5_A5A5_DEAD_BEEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for c in 0..count {
            let bottles: Vec<DataTuple> = (0..1 + next() % 4)
                .map(|_| {
                    let r = next();
                    bottle(
                        1990 + (r % 35) as i64,
                        80 + (r / 7 % 20) as i64,
                        regions[r % regions.len()],
                    )
                })
                .collect();
            rel.push(NestedObject::new(
                DataTuple::new([Value::Str(format!("Cellar #{c}"))]),
                bottles,
            ))
            .expect("well-typed");
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::chocolates;
    use crate::value::Value;

    #[test]
    fn fig1_has_two_boxes_of_three() {
        let rel = chocolates::fig1_boxes();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.objects[0].tuples.len(), 3);
        assert_eq!(rel.objects[0].attrs.get(0), &Value::str("Global Ground"));
    }

    #[test]
    fn booleanizer_matches_fig1() {
        let b = chocolates::booleanizer();
        let rel = chocolates::fig1_boxes();
        let s1 = b.booleanize_object(&rel.objects[0]).unwrap();
        // Fig. 1 right side, box S1: {111, 000, 110}.
        assert_eq!(s1, qhorn_core::Obj::from_bits("111 000 110"));
        let s2 = b.booleanize_object(&rel.objects[1]).unwrap();
        // Box S2: {100, 110} (two Belgium chocolates collapse).
        assert_eq!(s2, qhorn_core::Obj::from_bits("100 110"));
    }

    #[test]
    fn intro_query_rejects_both_fig1_boxes() {
        // The pedantic logician's hundred boxes: neither Fig. 1 box
        // satisfies the intended query.
        let q = chocolates::intro_query();
        let b = chocolates::booleanizer();
        for obj in &chocolates::fig1_boxes().objects {
            let boolean = b.booleanize_object(obj).unwrap();
            assert!(!q.accepts(&boolean));
        }
    }

    #[test]
    fn cellars_booleanize_with_ordering_propositions() {
        use super::cellars;
        let b = cellars::booleanizer();
        assert!(
            b.check_independence().is_empty(),
            "the three propositions are independent"
        );
        let t = cellars::bottle(2016, 95, "Rhône");
        assert_eq!(b.booleanize_tuple(&t).unwrap().to_bits(), "111");
        let t = cellars::bottle(2001, 95, "Rhône");
        assert_eq!(b.booleanize_tuple(&t).unwrap().to_bits(), "011");
        let t = cellars::bottle(2001, 95, "Rioja");
        assert_eq!(b.booleanize_tuple(&t).unwrap().to_bits(), "010");
    }

    #[test]
    fn cellars_synthesis_solves_intervals() {
        use super::cellars;
        use crate::synthesize::Synthesizer;
        let b = cellars::booleanizer();
        let synth = Synthesizer::new(&b, cellars::hints());
        for mask in 0u8..8 {
            let bits: String = (0..3)
                .map(|i| if mask & (1 << i) != 0 { '1' } else { '0' })
                .collect();
            let bt = qhorn_core::BoolTuple::from_bits(&bits);
            let tuple = synth
                .synthesize_tuple(&bt)
                .expect("independent propositions");
            assert_eq!(b.booleanize_tuple(&tuple).unwrap(), bt, "pattern {bits}");
        }
    }

    #[test]
    fn cellars_inventory_learnable_end_to_end() {
        use super::cellars;
        // Learn "every bottle recent, some excellent Rhône" from the
        // cellar propositions.
        use qhorn_core::learn::{learn_qhorn1, LearnOptions};
        use qhorn_core::oracle::QueryOracle;
        let intent = qhorn_core::Query::new(
            3,
            [
                qhorn_core::Expr::universal_bodyless(qhorn_core::VarId(0)),
                qhorn_core::Expr::conj(qhorn_core::VarSet::from_indices([1, 2])),
            ],
        )
        .unwrap();
        let mut oracle = QueryOracle::new(intent.clone());
        let got = learn_qhorn1(3, &mut oracle, &LearnOptions::default()).unwrap();
        assert!(qhorn_core::query::equiv::equivalent(got.query(), &intent));
        // And the inventory is well-typed for the binding.
        let b = cellars::booleanizer();
        for obj in &cellars::inventory(20).objects {
            b.booleanize_object(obj).unwrap();
        }
    }

    #[test]
    fn assorted_boxes_deterministic_and_well_typed() {
        let a = chocolates::assorted_boxes(50);
        let b = chocolates::assorted_boxes(50);
        assert_eq!(a.len(), 50);
        assert_eq!(a, b, "deterministic");
        let bridge = chocolates::booleanizer();
        for obj in &a.objects {
            bridge.booleanize_object(obj).unwrap();
            assert!(!obj.tuples.is_empty());
        }
    }
}
