//! Deterministic random [`DatasetDef`] generation for load testing and
//! property sweeps.
//!
//! The load harness needs arbitrary-but-reproducible datasets: schemas
//! mixing Bool/Int/Str attributes, embedded relations of configurable
//! size, and proposition sets up to the wire maximum — generated the way
//! SAT benchmark suites sweep `GenerateSATInstance` over size/arity
//! grids, with every instance checked against an independent reference
//! implementation before use. [`naive_eval`] is that reference: a
//! from-scratch re-implementation of proposition semantics that shares
//! no code with [`Proposition::eval`], so [`verify_dataset`] catches a
//! generator (or evaluator) bug rather than silently benchmarking
//! nonsense.
//!
//! Everything here is seed-driven and std-only: the same
//! [`GenParams`] always produce byte-identical [`DatasetDef`] JSON, on
//! any platform, independent of any external RNG crate's stream
//! stability. That guarantee is what the bench harness's seed-pinned
//! determinism test leans on.

use crate::proposition::{Cmp, Proposition};
use crate::relation::{DataTuple, NestedObject, NestedRelation};
use crate::schema::{Attr, FlatSchema, NestedSchema};
use crate::synthesize::DomainHints;
use crate::upload::{DatasetDef, MAX_PROPOSITIONS};
use crate::value::{AttrType, Value};

/// String-attribute value pool. Fixed and ordered: generation must be
/// byte-stable across runs and platforms.
const STR_POOL: &[&str] = &["alpha", "beta", "gamma", "delta", "omega"];

/// Integer attribute values (and proposition thresholds) range over
/// `0..INT_DOMAIN`.
const INT_DOMAIN: u64 = 100;

/// A tiny deterministic PRNG (splitmix64). Deliberately hand-rolled:
/// `qhorn-relation` has no rand dependency, and the generator's output
/// must stay byte-identical across toolchain and dependency bumps —
/// splitmix64 is a fixed algorithm, not a crate's evolving stream.
#[derive(Clone, Debug)]
pub struct GenRng(u64);

impl GenRng {
    /// Seeds the stream; equal seeds yield equal streams forever.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        GenRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` 0 yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Parameters for one generated dataset. Public fields: the sweep
/// builders fill them, harness knobs override them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenParams {
    /// PRNG seed; everything else equal, the seed alone determines the
    /// dataset bytes.
    pub seed: u64,
    /// Objects in the nested relation.
    pub objects: usize,
    /// Embedded tuples per object (each object draws `1..=` this).
    pub tuples_per_object: usize,
    /// Boolean attributes in the embedded schema.
    pub bool_attrs: usize,
    /// Integer attributes in the embedded schema.
    pub int_attrs: usize,
    /// String attributes in the embedded schema.
    pub str_attrs: usize,
    /// Propositions to bind (clamped to `1..=MAX_PROPOSITIONS`).
    pub propositions: usize,
}

impl GenParams {
    /// A small, quick-to-learn default shape, varied by `seed`.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        GenParams {
            seed,
            objects: 12,
            tuples_per_object: 4,
            bool_attrs: 2,
            int_attrs: 1,
            str_attrs: 1,
            propositions: 3,
        }
    }

    /// The dataset's catalog name: derived from every shape knob, so a
    /// sweep's datasets never collide in the catalog.
    #[must_use]
    pub fn name(&self) -> String {
        format!(
            "gen-{:08x}-o{}t{}-p{}",
            self.seed, self.objects, self.tuples_per_object, self.propositions
        )
    }
}

/// Builds the sweep grid `sizes × arities` in the style of SAT instance
/// generators: `sizes` scales the data (objects), `arities` scales the
/// proposition count, and each cell gets its own derived seed.
#[must_use]
pub fn sweep(seed: u64, sizes: &[usize], arities: &[usize]) -> Vec<GenParams> {
    let mut grid = Vec::with_capacity(sizes.len() * arities.len());
    for (i, &objects) in sizes.iter().enumerate() {
        for (j, &propositions) in arities.iter().enumerate() {
            let mut p = GenParams::small(seed ^ ((i as u64 + 1) << 32) ^ (j as u64 + 1));
            p.objects = objects.max(1);
            p.propositions = propositions.clamp(1, MAX_PROPOSITIONS);
            // More propositions need more attributes to spread over.
            p.bool_attrs = (p.propositions / 3 + 1).max(p.bool_attrs);
            p.int_attrs = (p.propositions / 3 + 1).max(p.int_attrs);
            p.str_attrs = (p.propositions / 3 + 1).max(p.str_attrs);
            grid.push(p);
        }
    }
    grid
}

/// Generates a complete, valid [`DatasetDef`] from `params`.
/// Deterministic: equal params give byte-identical definitions. The
/// result always passes [`DatasetDef::validate`] and [`verify_dataset`]
/// (the generator's own test suite pins both).
#[must_use]
pub fn generate_dataset(params: &GenParams) -> DatasetDef {
    let mut rng = GenRng::new(params.seed);
    let mut attrs = Vec::new();
    for b in 0..params.bool_attrs.max(1) {
        attrs.push(Attr::new(&format!("b{b}"), AttrType::Bool));
    }
    for i in 0..params.int_attrs {
        attrs.push(Attr::new(&format!("i{i}"), AttrType::Int));
    }
    for s in 0..params.str_attrs {
        attrs.push(Attr::new(&format!("s{s}"), AttrType::Str));
    }
    let embedded = FlatSchema::new(attrs).expect("generated attr names are distinct");
    let object_attrs =
        FlatSchema::new([Attr::new("name", AttrType::Str)]).expect("one attribute cannot collide");
    let schema = NestedSchema::new(&params.name(), object_attrs, "Item", embedded);

    // Propositions: round-robin over the embedded attributes so each
    // attribute carries few constraints (keeps synthesized questions
    // mostly realizable), names distinct by construction.
    let n_props = params.propositions.clamp(1, MAX_PROPOSITIONS);
    let embedded_attrs: Vec<(String, AttrType)> = schema
        .embedded
        .attrs()
        .iter()
        .map(|a| (a.name.clone(), a.ty))
        .collect();
    let mut propositions = Vec::with_capacity(n_props);
    for k in 0..n_props {
        let (attr, ty) = &embedded_attrs[k % embedded_attrs.len()];
        let name = format!("p{}", k + 1);
        let prop = match ty {
            AttrType::Bool => {
                if rng.flip() {
                    Proposition::is_true(&name, attr)
                } else {
                    Proposition::eq(&name, attr, Value::Bool(false))
                }
            }
            AttrType::Int => {
                let threshold = rng.below(INT_DOMAIN) as i64;
                let cmp = match rng.below(4) {
                    0 => Cmp::Ge,
                    1 => Cmp::Lt,
                    2 => Cmp::Eq,
                    _ => Cmp::Ne,
                };
                Proposition::new(&name, attr, cmp, Value::Int(threshold))
            }
            AttrType::Str => {
                let v = STR_POOL[rng.below(STR_POOL.len() as u64) as usize];
                let cmp = if rng.flip() { Cmp::Eq } else { Cmp::Ne };
                Proposition::new(&name, attr, cmp, Value::Str(v.to_string()))
            }
        };
        propositions.push(prop);
    }

    // Data: random tuples over the declared attribute types.
    let mut relation = NestedRelation::new(schema);
    for o in 0..params.objects.max(1) {
        let tuples = 1 + rng.below(params.tuples_per_object.max(1) as u64);
        let rows = (0..tuples)
            .map(|_| {
                let values: Vec<Value> = relation
                    .schema
                    .embedded
                    .attrs()
                    .iter()
                    .map(|a| match a.ty {
                        AttrType::Bool => Value::Bool(rng.flip()),
                        AttrType::Int => Value::Int(rng.below(INT_DOMAIN) as i64),
                        AttrType::Str => {
                            Value::Str(STR_POOL[rng.below(STR_POOL.len() as u64) as usize].into())
                        }
                    })
                    .collect();
                DataTuple::new(values)
            })
            .collect();
        let obj = NestedObject::new(DataTuple::new([Value::Str(format!("obj{o}"))]), rows);
        relation.push(obj).expect("generated rows match the schema");
    }

    // Hints: the full value pools, so the synthesizer always has
    // realizable candidates for equality constraints.
    let mut hints = DomainHints::none();
    for (attr, ty) in &embedded_attrs {
        match ty {
            AttrType::Int => {
                let pool = (0..5)
                    .map(|_| Value::Int(rng.below(INT_DOMAIN) as i64))
                    .collect();
                hints = hints.with(attr, pool);
            }
            AttrType::Str => {
                hints = hints.with(
                    attr,
                    STR_POOL.iter().map(|s| Value::Str((*s).into())).collect(),
                );
            }
            AttrType::Bool => {}
        }
    }

    DatasetDef {
        name: params.name(),
        relation,
        propositions,
        hints,
    }
}

/// The naive reference evaluator: proposition semantics re-implemented
/// from the paper's definition (attribute lookup by linear scan, direct
/// value comparison), sharing no code with [`Proposition::eval`].
/// Returns `None` when the proposition does not apply to the tuple
/// (unknown attribute, type mismatch, ordering on non-integers) — cases
/// a valid dataset never produces.
#[must_use]
pub fn naive_eval(prop: &Proposition, tuple: &DataTuple, schema: &FlatSchema) -> Option<bool> {
    let mut found = None;
    for (i, a) in schema.attrs().iter().enumerate() {
        if a.name == prop.attr {
            found = Some(i);
            break;
        }
    }
    let v = tuple.values().get(found?)?;
    match prop.cmp {
        Cmp::Eq => Some(v == &prop.rhs),
        Cmp::Ne => Some(v != &prop.rhs),
        Cmp::Lt | Cmp::Le | Cmp::Gt | Cmp::Ge => match (v, &prop.rhs) {
            (Value::Int(a), Value::Int(b)) => Some(match prop.cmp {
                Cmp::Lt => a < b,
                Cmp::Le => a <= b,
                Cmp::Gt => a > b,
                _ => a >= b,
            }),
            _ => None,
        },
    }
}

/// Verifies a dataset against the naive reference evaluator: the
/// definition must validate, and for every embedded tuple of every
/// object the [`Booleanizer`](crate::binding::Booleanizer) bit must
/// equal [`naive_eval`]'s answer for every proposition.
///
/// # Errors
/// A description of the first disagreement or validation failure.
pub fn verify_dataset(def: &DatasetDef) -> Result<(), String> {
    let bridge = def.validate().map_err(|e| e.to_string())?;
    let schema = &def.relation.schema.embedded;
    for (o, obj) in def.relation.objects.iter().enumerate() {
        for (t, tuple) in obj.tuples.iter().enumerate() {
            let bits = bridge
                .booleanize_tuple(tuple)
                .map_err(|e| format!("object {o} tuple {t}: {e}"))?;
            for (k, prop) in def.propositions.iter().enumerate() {
                let expected = naive_eval(prop, tuple, schema).ok_or_else(|| {
                    format!("object {o} tuple {t}: naive eval failed for {}", prop.name)
                })?;
                let got = bits.get(qhorn_core::VarId(k as u16));
                if got != expected {
                    return Err(format!(
                        "object {o} tuple {t} proposition {}: booleanizer says {got}, reference says {expected}",
                        prop.name
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qhorn_json::ToJson;

    #[test]
    fn generated_datasets_validate_and_verify_across_the_sweep() {
        for params in sweep(0xCAFE, &[4, 16, 40], &[1, 5, 12, 64]) {
            let def = generate_dataset(&params);
            assert!(def.propositions.len() <= MAX_PROPOSITIONS);
            verify_dataset(&def).unwrap_or_else(|e| panic!("{:?}: {e}", params.name()));
        }
    }

    #[test]
    fn same_seed_same_bytes_different_seed_different_bytes() {
        let a = generate_dataset(&GenParams::small(7)).to_json().to_string();
        let b = generate_dataset(&GenParams::small(7)).to_json().to_string();
        let c = generate_dataset(&GenParams::small(8)).to_json().to_string();
        assert_eq!(a, b, "same seed must be byte-identical");
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn splitmix_stream_is_pinned() {
        // The stream itself is part of the determinism contract: if this
        // changes, every recorded workload script changes.
        let mut rng = GenRng::new(1);
        assert_eq!(rng.next_u64(), 0x910a_2dec_8902_5cc1);
        assert_eq!(rng.next_u64(), 13757245211066428519);
    }

    #[test]
    fn naive_eval_rejects_what_valid_defs_never_contain() {
        let schema = FlatSchema::new([Attr::new("x", AttrType::Bool)]).unwrap();
        let t = DataTuple::new([Value::Bool(true)]);
        // Unknown attribute.
        assert_eq!(
            naive_eval(&Proposition::is_true("p", "nope"), &t, &schema),
            None
        );
        // Ordering on a non-integer.
        assert_eq!(
            naive_eval(
                &Proposition::new("p", "x", Cmp::Lt, Value::Bool(true)),
                &t,
                &schema
            ),
            None
        );
    }
}
