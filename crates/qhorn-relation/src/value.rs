//! Attribute values and their types.

use std::fmt;

/// The type of an attribute.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AttrType {
    /// Boolean attribute (e.g. `isDark`).
    Bool,
    /// 64-bit integer attribute (e.g. `cocoaPercent`).
    Int,
    /// String attribute (e.g. `origin`).
    Str,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Bool => f.write_str("bool"),
            AttrType::Int => f.write_str("int"),
            AttrType::Str => f.write_str("string"),
        }
    }
}

/// A typed attribute value.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// String.
    Str(String),
}

impl Value {
    /// The value's type.
    #[must_use]
    pub fn attr_type(&self) -> AttrType {
        match self {
            Value::Bool(_) => AttrType::Bool,
            Value::Int(_) => AttrType::Int,
            Value::Str(_) => AttrType::Str,
        }
    }

    /// Convenience constructor for string values.
    #[must_use]
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_and_conversions() {
        assert_eq!(Value::from(true).attr_type(), AttrType::Bool);
        assert_eq!(Value::from(42i64).attr_type(), AttrType::Int);
        assert_eq!(Value::from("Belgium").attr_type(), AttrType::Str);
        assert_eq!(Value::str("x"), Value::Str("x".into()));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("Belgium").to_string(), "\"Belgium\"");
        assert_eq!(AttrType::Str.to_string(), "string");
    }
}
