//! Proposition interference (§2, assumption ii).
//!
//! The Boolean abstraction requires that "the true/false assignment to one
//! proposition does not interfere with the true/false assignments to other
//! propositions". The paper's example: `pm: origin = Madagascar` and
//! `pb: origin = Belgium` interfere — `pm → ¬pb`.
//!
//! This module decides, per attribute, whether a conjunction of signed
//! constraints is satisfiable, and uses that to check *pairwise
//! independence*: all four truth combinations of every proposition pair
//! must be realizable by some attribute value. (Pairwise independence does
//! not imply joint satisfiability of arbitrary patterns; the synthesizer
//! reports residual conflicts per pattern — see [`crate::synthesize`].)

use crate::proposition::{Cmp, Proposition};
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A signed constraint: a proposition required to be `true` or `false`.
#[derive(Clone, Debug)]
pub struct SignedProp<'a> {
    /// The proposition.
    pub prop: &'a Proposition,
    /// Required truth value.
    pub positive: bool,
}

/// A satisfiability domain for one attribute, accumulating signed
/// constraints.
#[derive(Clone, Debug, Default)]
pub struct AttrConstraints {
    /// Required exact value, if any (from a positive `=` or a negative
    /// `≠`).
    required: Option<Value>,
    /// Excluded exact values (negative `=` / positive `≠`).
    excluded: BTreeSet<Value>,
    /// Integer lower bound (inclusive).
    lo: i64,
    /// Integer upper bound (inclusive).
    hi: i64,
    /// Whether any constraint was added.
    any: bool,
    /// Whether an outright contradiction was detected.
    contradiction: bool,
}

impl AttrConstraints {
    /// Fresh, unconstrained domain.
    #[must_use]
    pub fn new() -> Self {
        AttrConstraints {
            required: None,
            excluded: BTreeSet::new(),
            lo: i64::MIN,
            hi: i64::MAX,
            any: false,
            contradiction: false,
        }
    }

    /// Adds one signed constraint.
    pub fn add(&mut self, cmp: Cmp, rhs: &Value, positive: bool) {
        self.any = true;
        // Normalize negative orderings to their complements.
        let (cmp, positive) = match (cmp, positive) {
            (Cmp::Lt, false) => (Cmp::Ge, true),
            (Cmp::Le, false) => (Cmp::Gt, true),
            (Cmp::Gt, false) => (Cmp::Le, true),
            (Cmp::Ge, false) => (Cmp::Lt, true),
            (Cmp::Ne, p) => (Cmp::Eq, !p),
            other => other,
        };
        match (cmp, rhs) {
            (Cmp::Eq, v) if positive => self.require(v.clone()),
            (Cmp::Eq, v) => {
                self.excluded.insert(v.clone());
            }
            (Cmp::Lt, Value::Int(c)) => self.hi = self.hi.min(c.saturating_sub(1)),
            (Cmp::Le, Value::Int(c)) => self.hi = self.hi.min(*c),
            (Cmp::Gt, Value::Int(c)) => self.lo = self.lo.max(c.saturating_add(1)),
            (Cmp::Ge, Value::Int(c)) => self.lo = self.lo.max(*c),
            _ => self.contradiction = true, // ordering on non-int
        }
    }

    fn require(&mut self, v: Value) {
        match &self.required {
            Some(r) if *r != v => self.contradiction = true,
            _ => self.required = Some(v),
        }
    }

    /// Picks a value satisfying every accumulated constraint, or `None` if
    /// unsatisfiable. `hints` are tried first for unconstrained slack.
    #[must_use]
    pub fn solve(&self, hints: &[Value]) -> Option<Value> {
        if self.contradiction {
            return None;
        }
        if let Some(r) = &self.required {
            let ok = !self.excluded.contains(r)
                && match r {
                    Value::Int(i) => (self.lo..=self.hi).contains(i),
                    _ => self.lo == i64::MIN && self.hi == i64::MAX,
                };
            return ok.then(|| r.clone());
        }
        // No required point: try hints, then synthesize.
        for h in hints {
            let ok = !self.excluded.contains(h)
                && match h {
                    Value::Int(i) => (self.lo..=self.hi).contains(i),
                    _ => true,
                };
            if ok {
                return Some(h.clone());
            }
        }
        // Synthesize by the type of whatever constraints we saw.
        if self.lo != i64::MIN
            || self.hi != i64::MAX
            || matches!(self.excluded.iter().next(), Some(Value::Int(_)))
        {
            // Integer domain: sweep up from a clamped zero, then down —
            // |excluded|+1 probes per direction always suffice.
            if self.lo > self.hi {
                return None;
            }
            let start = 0i64.clamp(self.lo, self.hi);
            let budget = self.excluded.len() as i64;
            for candidate in start..=self.hi.min(start.saturating_add(budget)) {
                if !self.excluded.contains(&Value::Int(candidate)) {
                    return Some(Value::Int(candidate));
                }
            }
            if start > self.lo {
                for candidate in (self.lo.max(start.saturating_sub(budget + 1))..start).rev() {
                    if !self.excluded.contains(&Value::Int(candidate)) {
                        return Some(Value::Int(candidate));
                    }
                }
            }
            return None;
        }
        if matches!(self.excluded.iter().next(), Some(Value::Bool(_))) {
            for b in [false, true] {
                if !self.excluded.contains(&Value::Bool(b)) {
                    return Some(Value::Bool(b));
                }
            }
            return None;
        }
        if matches!(self.excluded.iter().next(), Some(Value::Str(_))) {
            for k in 0.. {
                let v = Value::Str(format!("synthetic_{k}"));
                if !self.excluded.contains(&v) {
                    return Some(v);
                }
            }
        }
        // Entirely unconstrained and no hints: caller decides the default.
        None
    }

    /// `true` iff no constraint has been added.
    #[must_use]
    pub fn is_unconstrained(&self) -> bool {
        !self.any
    }
}

/// A detected interference between two propositions: a truth combination
/// no attribute value realizes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Interference {
    /// Name of the first proposition.
    pub a: String,
    /// Name of the second proposition.
    pub b: String,
    /// The unrealizable combination (value required for a, value for b).
    pub combination: (bool, bool),
}

impl fmt::Display for Interference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (va, vb) = self.combination;
        write!(
            f,
            "propositions {} and {} interfere: no value makes {}={va} and {}={vb}",
            self.a, self.b, self.a, self.b
        )
    }
}

/// Checks pairwise independence of propositions **on the same attribute**
/// (propositions on different attributes never interfere). Returns every
/// unrealizable (pair, combination).
#[must_use]
pub fn check_pairwise_independence(props: &[Proposition]) -> Vec<Interference> {
    let mut out = Vec::new();
    for (i, p) in props.iter().enumerate() {
        for q in props.iter().skip(i + 1) {
            if p.attr != q.attr {
                continue;
            }
            for (va, vb) in [(true, true), (true, false), (false, true), (false, false)] {
                let mut c = AttrConstraints::new();
                c.add(p.cmp, &p.rhs, va);
                c.add(q.cmp, &q.rhs, vb);
                if c.solve(&[]).is_none() {
                    out.push(Interference {
                        a: p.name.clone(),
                        b: q.name.clone(),
                        combination: (va, vb),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin_eq(name: &str, v: &str) -> Proposition {
        Proposition::eq(name, "origin", Value::str(v))
    }

    #[test]
    fn paper_example_madagascar_belgium() {
        // pm and pb interfere: both true is impossible.
        let props = vec![origin_eq("pm", "Madagascar"), origin_eq("pb", "Belgium")];
        let found = check_pairwise_independence(&props);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].combination, (true, true));
        assert!(found[0].to_string().contains("pm"));
    }

    #[test]
    fn different_attributes_never_interfere() {
        let props = vec![
            Proposition::is_true("p1", "isDark"),
            origin_eq("pm", "Madagascar"),
        ];
        assert!(check_pairwise_independence(&props).is_empty());
    }

    #[test]
    fn bool_negation_pair_fully_interferes() {
        // p: isDark = true, q: isDark = false — TT and FF impossible.
        let props = vec![
            Proposition::is_true("p", "isDark"),
            Proposition::eq("q", "isDark", Value::Bool(false)),
        ];
        let found = check_pairwise_independence(&props);
        let combos: BTreeSet<(bool, bool)> = found.iter().map(|i| i.combination).collect();
        assert!(combos.contains(&(true, true)));
        assert!(combos.contains(&(false, false)));
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn nested_integer_ranges_interfere_one_way() {
        // p: cocoa ≥ 70, q: cocoa ≥ 50: p ∧ ¬q impossible, others fine.
        let p = Proposition::new("p", "cocoa", Cmp::Ge, Value::Int(70));
        let q = Proposition::new("q", "cocoa", Cmp::Ge, Value::Int(50));
        let found = check_pairwise_independence(&[p, q]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].combination, (true, false));
    }

    #[test]
    fn disjoint_ranges_are_independent_except_tt() {
        let p = Proposition::new("p", "cocoa", Cmp::Lt, Value::Int(10));
        let q = Proposition::new("q", "cocoa", Cmp::Gt, Value::Int(90));
        let found = check_pairwise_independence(&[p, q]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].combination, (true, true));
    }

    #[test]
    fn independent_propositions_pass() {
        // Equalities on a string attribute with ≥3 possible values: only
        // TT conflicts... unless attributes differ. Same attribute, Ne:
        let p = origin_eq("pm", "Madagascar");
        let q = Proposition::new("pn", "origin", Cmp::Ne, Value::str("Sweden"));
        // pm=true → origin=Madagascar → pn=true (≠ Sweden): combination
        // (true, false) is impossible.
        let found = check_pairwise_independence(&[p, q]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].combination, (true, false));
    }

    #[test]
    fn solve_respects_bounds_and_exclusions() {
        let mut c = AttrConstraints::new();
        c.add(Cmp::Ge, &Value::Int(5), true);
        c.add(Cmp::Le, &Value::Int(7), true);
        c.add(Cmp::Eq, &Value::Int(5), false);
        c.add(Cmp::Eq, &Value::Int(6), false);
        assert_eq!(c.solve(&[]), Some(Value::Int(7)));
        c.add(Cmp::Eq, &Value::Int(7), false);
        assert_eq!(c.solve(&[]), None);
    }

    #[test]
    fn solve_prefers_hints() {
        let mut c = AttrConstraints::new();
        c.add(Cmp::Eq, &Value::str("Belgium"), false);
        let hint = vec![Value::str("Sweden")];
        assert_eq!(c.solve(&hint), Some(Value::str("Sweden")));
        // Without hints, a synthetic string is invented.
        let v = c.solve(&[]).unwrap();
        assert!(matches!(v, Value::Str(s) if s.starts_with("synthetic_")));
    }

    #[test]
    fn required_point_checked_against_everything() {
        let mut c = AttrConstraints::new();
        c.add(Cmp::Eq, &Value::Int(5), true);
        c.add(Cmp::Ge, &Value::Int(6), true);
        assert_eq!(c.solve(&[]), None, "required 5 but lo is 6");
    }
}
