//! # qhorn-relation
//!
//! The data-domain substrate of the paper (§2, Fig. 1): nested relations
//! with single-level nesting, user propositions over the embedded
//! relation's attributes, and the bridge between the data domain and the
//! Boolean domain the learning/verification algorithms operate in.
//!
//! * **Forward** ([`binding::Booleanizer`]): evaluate each proposition on
//!   each embedded tuple, turning objects into [`qhorn_core::Obj`]s.
//! * **Backward** ([`synthesize::Synthesizer`]): given a Boolean tuple the
//!   learner wants to show the user, construct an actual data tuple
//!   realizing that true/false pattern — the paper's answer to the
//!   "arbitrary examples" criticism of active learning (§5).
//! * **Interference** ([`interference`]): detect proposition pairs whose
//!   truth values cannot vary independently (e.g. `origin = Madagascar`
//!   vs `origin = Belgium`), violating the paper's §2 assumption (ii).
//!
//! ```
//! use qhorn_relation::datasets::chocolates;
//! use qhorn_relation::binding::Booleanizer;
//!
//! let schema = chocolates::schema();
//! let props = chocolates::propositions();
//! let bridge = Booleanizer::new(schema.embedded.clone(), props).unwrap();
//!
//! // Fig. 1: the boxes become sets of 3-variable Boolean tuples — three
//! // propositions over each chocolate.
//! let boxes = chocolates::fig1_boxes();
//! let obj = bridge.booleanize_object(&boxes.objects[0]).unwrap();
//! assert_eq!(obj.arity(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binding;
pub mod datasets;
pub mod generate;
pub mod interference;
mod json;
pub mod proposition;
pub mod relation;
pub mod schema;
pub mod synthesize;
pub mod upload;
pub mod value;

pub use binding::Booleanizer;
pub use generate::{generate_dataset, sweep, verify_dataset, GenParams, GenRng};
pub use proposition::{Cmp, PropError, Proposition};
pub use relation::{DataTuple, FlatRelation, NestedObject, NestedRelation};
pub use schema::{Attr, FlatSchema, NestedSchema, SchemaError};
pub use synthesize::{DomainHints, SynthesisError, Synthesizer};
pub use upload::DatasetDef;
pub use value::{AttrType, Value};
